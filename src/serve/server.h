#ifndef HYGNN_SERVE_SERVER_H_
#define HYGNN_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "core/clock.h"
#include "core/mutex.h"
#include "core/status.h"
#include "core/thread_annotations.h"
#include "core/thread_pool.h"
#include "hygnn/model.h"
#include "serve/embedding_store.h"
#include "serve/request.h"
#include "serve/scoring.h"

namespace hygnn::serve {

/// The serving front-end: a request pipeline that turns the
/// library-call-per-batch PairScorer into a service loop with SLOs.
///
/// Architecture (marian-dev batch_generator style):
///
///   submitters ──> bounded MPMC queue ──> dynamic batcher ──> workers
///                  (admission control)    (close a batch on    (shared
///                   shed when full         max-size or          store
///                   ResourceExhausted)     max-wait-μs)         cache)
///
/// * Admission control: SubmitAsync validates the request against the
///   catalog, then enqueues — or sheds immediately with a typed
///   ResourceExhausted when queue_capacity requests are already
///   waiting. Overload degrades to fast typed errors, never to
///   unbounded queue growth or blocked submitters.
/// * Dynamic batching: a worker opens a batch with the oldest queued
///   request and keeps appending requests until the batch holds
///   max_batch pairs or has been open max_wait_us microseconds,
///   whichever comes first. Requests are never split across batches.
/// * Determinism: a batch is scored by concatenating its requests'
///   pairs into one PairScorer::ScorePairs call. The scorer's fixed
///   chunk partition and row-independent decoder make every per-request
///   result bit-identical to scoring that request alone, regardless of
///   batch composition, worker count, or arrival order (pinned by
///   tests/server_test.cc).
/// * Shutdown: Shutdown() stops admitting, then drains — every request
///   already accepted completes with a real result before workers
///   exit. Waiters never hang.
///
/// Requests may be submitted before Start(); they sit in the queue
/// until workers spawn. Start/Shutdown are not safe to call
/// concurrently with each other (call them from one owning thread);
/// SubmitAsync/Score are safe from any number of threads.
///
/// Deadlines (the request-lifecycle robustness layer):
/// * ScoreRequest::timeout_us becomes an absolute monotonic deadline
///   (core::ActiveClock, captured at construction) at admission.
/// * A request whose deadline has passed is never scored: expiry is
///   checked when its batch closes (it completes with DeadlineExceeded
///   and never enters the batch) and again after scoring (the deadline
///   passed mid-batch — the stale score is withheld and the typed
///   error delivered instead). A waiter therefore never outlives its
///   deadline by more than one batch window.
/// * Deadline-aware admission: once the batch-service-time EWMA warms
///   up, a request that cannot make its deadline through the current
///   queue (estimate = ewma_us * (depth + 1) / workers) is shed at
///   SubmitAsync with ResourceExhausted and a "retry after ~N us"
///   hint, so overload degrades to fast typed errors instead of
///   queueing work that is already dead.
///
/// Hot catalog swap (epoch pinning):
/// * Catalog mutations (AddDrug/Rebuild/Invalidate) need NO quiesce:
///   they publish a new EmbeddingStore snapshot while the server keeps
///   serving. Each batch pins exactly one StoreSnapshot at batch open
///   and scores every pair in it against that epoch, so per-request
///   results stay bit-identical to serial scoring regardless of
///   concurrent publications; the superseded snapshot is reclaimed
///   when the last batch pinned to it drains (shared_ptr refcount is
///   the grace period).
/// * SubmitAsync validates pair ids against the *current* epoch. A
///   request validated against epoch N whose batch later pins a
///   different epoch gets a well-defined outcome: ids stay valid when
///   the catalog only grew (AddDrug), and a shrink (Rebuild) or
///   Invalidate yields a typed InvalidArgument/FailedPrecondition —
///   never a torn or stale-row score.
/// * Health() reports kSwapping while a batch pinned to a superseded
///   epoch is still in flight — the brief swap transition window.
///
/// The model and store must outlive the server.
class Server {
 public:
  /// A submitted request's completion handle. Submitter and worker
  /// share ownership via shared_ptr, so a caller may drop its handle
  /// without waiting (fire-and-forget) and the worker side stays valid.
  class Pending {
   public:
    /// Blocks until the request's batch has been scored, then returns
    /// the result (a copy — Wait may be called repeatedly). The
    /// result is an error only when the whole batch failed to score
    /// (e.g. the store went stale between admission and scoring) or
    /// the server was torn down without ever starting.
    core::Result<ScoreResponse> Wait();

    /// Like Wait, but gives up after `timeout_us` microseconds of
    /// *wall* time and returns DeadlineExceeded when the result is not
    /// ready — a bounded wait for callers that must not block
    /// indefinitely even if their request carried no server-side
    /// deadline. The request stays in flight: Wait/WaitFor may be
    /// called again and will observe the eventual result. Non-positive
    /// timeouts make this a non-blocking poll.
    core::Result<ScoreResponse> WaitFor(int64_t timeout_us);

    /// True once the result is available; Wait will not block.
    bool done() const;

   private:
    friend class Server;
    explicit Pending(ScoreRequest request)
        : request_(std::move(request)) {}

    void Complete(core::Result<ScoreResponse> result);

    /// Owned by the submitter until SubmitAsync succeeds, then by the
    /// worker that batches it; never mutated after that hand-off, so
    /// reads from the scoring path need no lock.
    ScoreRequest request_;
    /// Absolute monotonic deadline (core::Clock nanos) stamped at
    /// admission; 0 when the request carries no deadline. Like
    /// request_, immutable after the submit hand-off.
    uint64_t deadline_nanos_ = 0;
    /// Enqueue timestamp (obs::NowNanos) for the queue-wait histogram;
    /// 0 when metrics were off at submit time.
    uint64_t enqueue_nanos_ = 0;

    mutable core::Mutex mutex_;
    core::CondVar done_cv_;
    bool done_ HYGNN_GUARDED_BY(mutex_) = false;
    std::optional<core::Result<ScoreResponse>> result_
        HYGNN_GUARDED_BY(mutex_);
  };

  /// Always-on pipeline counters (relaxed atomics — cheap enough to
  /// never gate). The obs registry mirrors richer per-stage histograms
  /// when metrics are enabled. `accepted` is bumped inside the
  /// admission critical section — before any worker can see the
  /// request — so a stats() sample never shows completed > accepted.
  struct Stats {
    uint64_t accepted = 0;   ///< requests admitted to the queue
    uint64_t shed = 0;       ///< requests refused with ResourceExhausted
    uint64_t completed = 0;  ///< requests whose result was delivered
    uint64_t batches = 0;    ///< batches scored
    /// Accepted requests completed with DeadlineExceeded instead of a
    /// score (expired at batch close or during scoring). Every expired
    /// request also counts in `completed` — its typed result was
    /// delivered.
    uint64_t expired = 0;
    /// Shed responses that carried a computed "retry after ~N us"
    /// hint (EWMA warm). Sheds before the first batch completes have
    /// no estimate and say "retry after backoff" instead.
    uint64_t retried_after_hint = 0;
  };

  /// Coarse health for load balancers and the obs gauge
  /// ("serve.server.health", numeric value of this enum): kServing
  /// while the queue is comfortably below capacity, kDegraded once it
  /// is at least half full (admission may start shedding), kDraining
  /// after Shutdown began (all new requests refused). kSwapping is the
  /// brief catalog-swap transition: a batch pinned to a superseded
  /// store epoch is still draining. Precedence when states overlap:
  /// kDraining > kDegraded > kSwapping > kServing — a swap never masks
  /// queue pressure, and both yield to shutdown.
  enum class Health : int32_t {
    kServing = 0,
    kDegraded = 1,
    kDraining = 2,
    kSwapping = 3,
  };

  /// Model and store must outlive the server; `options` are validated
  /// by Start (construction never fails).
  Server(const model::HyGnnModel* model, const EmbeddingStore* store,
         const ServerOptions& options);

  /// Joins workers; any still-queued request (server never started)
  /// completes with a FailedPrecondition result rather than hanging
  /// its waiter.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Validates options and spawns the worker pool. FailedPrecondition
  /// when already started or already shut down.
  core::Status Start();

  /// Stops admission, drains every accepted request, joins workers.
  /// Idempotent. Requests submitted after Shutdown are refused with
  /// FailedPrecondition.
  void Shutdown();

  /// Non-blocking admission. Validates the request against the catalog
  /// (InvalidArgument / FailedPrecondition) and applies admission
  /// control (ResourceExhausted when the queue is at capacity). On Ok
  /// the returned handle's Wait() delivers the response.
  core::Result<std::shared_ptr<Pending>> SubmitAsync(ScoreRequest request);

  /// Blocking convenience: SubmitAsync + Wait.
  core::Result<ScoreResponse> Score(ScoreRequest request);

  Stats stats() const;

  /// Current degradation state (see Health above). Safe from any
  /// thread.
  Health health() const;

  const ServerOptions& options() const { return options_; }

 private:
  /// Worker loop: close batches, score them, deliver results. Exits
  /// when shutdown is signalled and the queue is drained.
  void WorkerLoop() HYGNN_EXCLUDES(mutex_);

  /// Blocks for the next batch (dynamic batching rules above).
  /// Requests whose deadline passed while queued are completed with
  /// DeadlineExceeded here instead of joining the batch. Empty means
  /// shutdown-and-drained: the worker should exit.
  std::vector<std::shared_ptr<Pending>> NextBatch() HYGNN_EXCLUDES(mutex_);

  /// Scores one batch against one pinned store epoch and completes
  /// every request in it (expired ones with DeadlineExceeded), then
  /// folds the batch's service time into the admission EWMA. The epoch
  /// pin is taken at entry — before the chaos hook, so a stalled batch
  /// holds its pre-stall epoch across any swap that publishes while it
  /// is parked — and released when the batch's frame unwinds.
  void RunBatch(const std::vector<std::shared_ptr<Pending>>& batch);

  /// Completes one expired request with DeadlineExceeded and bumps the
  /// expired/completed counters. Callable with or without mutex_ held
  /// (Pending has its own lock; no path acquires mutex_ after it).
  void CompleteExpiredRequest(const std::shared_ptr<Pending>& pending);

  /// Delivers a batch-level failure: every waiter gets `status`,
  /// except those whose deadline has already passed — the
  /// "never scored within its deadline => DeadlineExceeded" contract
  /// outranks the batch error, so expired waiters get the typed expiry
  /// (and count in Stats::expired) even when their batch failed.
  void FailBatch(const std::vector<std::shared_ptr<Pending>>& batch,
                 const core::Status& status);

  /// Folds one batch's service time (open to results delivered) into
  /// the admission EWMA, releases the batch's epoch pin
  /// (`pinned_generation`), and republishes health.
  void FinishBatch(uint64_t service_start_nanos, uint64_t pinned_generation)
      HYGNN_EXCLUDES(mutex_);

  Health HealthLocked() const HYGNN_REQUIRES(mutex_);

  /// Mirrors the current health into the obs gauge (when metrics are
  /// on). Called at every admission decision and batch completion.
  void PublishHealthLocked() HYGNN_REQUIRES(mutex_);

  /// Estimated microseconds until a request admitted now would have
  /// its result, from the batch-service EWMA and queue depth; 0 while
  /// the EWMA is cold (no batch completed yet).
  int64_t EstimatedWaitUsLocked() const HYGNN_REQUIRES(mutex_);

  const ServerOptions options_;
  PairScorer scorer_;
  const EmbeddingStore* store_;
  /// Deadline arithmetic reads this seam (core::ActiveClock at
  /// construction), so tests drive expiry with a ManualClock.
  core::Clock* clock_;

  mutable core::Mutex mutex_;
  /// Signalled on enqueue and on shutdown.
  core::CondVar queue_nonempty_;
  std::deque<std::shared_ptr<Pending>> queue_ HYGNN_GUARDED_BY(mutex_);
  bool started_ HYGNN_GUARDED_BY(mutex_) = false;
  bool shutdown_ HYGNN_GUARDED_BY(mutex_) = false;
  /// EWMA of batch service time (batch open to results delivered) in
  /// microseconds; 0 until the first batch completes. Drives
  /// deadline-aware admission and retry-after hints.
  double ewma_batch_us_ HYGNN_GUARDED_BY(mutex_) = 0.0;
  /// Store generations of the in-flight batches' pinned epochs (one
  /// entry per batch between RunBatch entry and its FinishBatch). The
  /// health check reports kSwapping while the oldest pinned generation
  /// trails the store's current one.
  std::multiset<uint64_t> pinned_generations_ HYGNN_GUARDED_BY(mutex_);

  /// Touched only by Start/Shutdown/destructor (single owning thread).
  std::vector<core::WorkerThread> workers_;

  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> expired_{0};
  std::atomic<uint64_t> retried_after_hint_{0};
};

}  // namespace hygnn::serve

#endif  // HYGNN_SERVE_SERVER_H_
