#ifndef HYGNN_SERVE_RETRY_H_
#define HYGNN_SERVE_RETRY_H_

#include <cstdint>

#include "core/rng.h"
#include "core/status.h"

namespace hygnn::serve {

/// Client-side resilience knobs for retrying *admission* failures
/// against serve::Server. Only admission-time refusals are retryable:
/// ResourceExhausted (shed — the server itself asked for a backed-off
/// retry) and DeadlineExceeded returned by SubmitAsync. A
/// DeadlineExceeded delivered through Pending::Wait means the server
/// already spent work on the request; retrying it would double charge
/// an overloaded server, so callers must not feed those back in.
struct RetryOptions {
  /// Total tries per request, the first submission included. 1 turns
  /// retrying off.
  int32_t max_attempts = 4;
  /// Backoff before the first retry; doubles (times `multiplier`) per
  /// further retry, capped at max_backoff_us.
  int64_t initial_backoff_us = 500;
  double multiplier = 2.0;
  int64_t max_backoff_us = 50000;
  /// Jitter fraction in [0, 1]: the actual sleep is drawn uniformly
  /// from [backoff * (1 - jitter), backoff], decorrelating retry storms
  /// from submitters that were shed in the same instant.
  double jitter = 0.5;
  /// Retry budget across the policy's lifetime (all requests): once
  /// this many retries have been granted, every further failure is
  /// surfaced immediately. Bounds the retry amplification a degraded
  /// server sees from one client to (1 + budget / requests).
  int64_t retry_budget = 1000;

  core::Status Validate() const;
};

/// Jittered-exponential-backoff retry schedule over core::Rng (seeded —
/// two policies with the same seed emit identical backoff sequences,
/// so load runs with retries stay reproducible). Not thread-safe: give
/// each submitter thread its own policy (fork the seed).
class RetryPolicy {
 public:
  RetryPolicy(const RetryOptions& options, uint64_t seed);

  /// True for the two codes a client may retry: ResourceExhausted and
  /// (admission-time) DeadlineExceeded. Everything else — validation
  /// errors, shutdown refusals, scoring failures — is not transient.
  static bool IsRetryable(const core::Status& status);

  /// Decides retry number `attempt` (1-based: 1 = first retry) after
  /// `status`. Returns the jittered backoff to sleep in microseconds,
  /// or -1 when the request should give up (non-retryable status,
  /// attempts exceeded, or budget exhausted).
  int64_t NextBackoffUs(const core::Status& status, int32_t attempt);

  /// Retries granted so far (budget consumed).
  int64_t retries_granted() const { return retries_granted_; }

  const RetryOptions& options() const { return options_; }

 private:
  RetryOptions options_;
  core::Rng rng_;
  int64_t retries_granted_ = 0;
};

}  // namespace hygnn::serve

#endif  // HYGNN_SERVE_RETRY_H_
