#ifndef HYGNN_SERVE_CHAOS_H_
#define HYGNN_SERVE_CHAOS_H_

#include <cstdint>

#include "core/mutex.h"
#include "core/status.h"
#include "core/thread_annotations.h"

namespace hygnn::serve {

/// Fault-injection seam for the serve::Server scoring path — the
/// serving analogue of core::FaultInjectingFs. Installed via
/// ServerOptions::chaos, it is invoked by every worker at batch open
/// (after the batch closed, before scoring), where it can
///
///   * stall: park the worker that opens the Nth batch until the test
///     releases it — a wedged scorer / GC pause / slow downstream.
///     While the worker is parked the test can advance a ManualClock
///     past request deadlines, which is what makes deadline-expiry
///     tests deterministic on one CPU with zero wall-clock sleeps.
///     The worker pins its catalog epoch *before* this hook runs, so a
///     test can publish a swap (AddDrug/Rebuild/Invalidate) while the
///     worker is parked and observe the batch score against its
///     pre-stall snapshot;
///   * fail: make the Nth batch fail with an injected typed status
///     (Internal crash, FailedPrecondition store-went-stale, ...) —
///     every request in that batch must still complete with that
///     status, never hang.
///
/// Batches are counted 1-based in the order workers open them (equal to
/// the worker's RunBatch entry order; deterministic with one worker).
/// All methods are thread-safe. Arm faults before the target batch
/// opens; a stall must be released by the test — Shutdown() joins
/// workers and will wait forever on a parked one, so release before or
/// concurrently with shutdown.
class FaultInjectingScorer {
 public:
  FaultInjectingScorer() = default;

  FaultInjectingScorer(const FaultInjectingScorer&) = delete;
  FaultInjectingScorer& operator=(const FaultInjectingScorer&) = delete;

  /// Disarms every fault and resets the batch counter. Must not be
  /// called while a worker is parked in a stall.
  void Reset();

  /// Parks the worker that opens the `n`th batch (1-based) until
  /// ReleaseStall. n <= 0 disarms. Re-arming replaces the previous
  /// target and forgets an unconsumed ReleaseStall.
  void StallNthBatch(int64_t n);

  /// Fails the `n`th batch (1-based) with `status` instead of scoring
  /// it. n <= 0 disarms. `status` must be non-Ok.
  void FailNthBatch(int64_t n, core::Status status);

  /// Blocks the calling (test) thread until a worker is parked in the
  /// armed stall — the synchronization point after which the test owns
  /// the timeline (advance clocks, submit more requests, shut down).
  void AwaitStalled();

  /// Unparks the stalled worker. Safe to call before the worker
  /// reaches the stall (the stall then passes straight through).
  void ReleaseStall();

  /// Batches opened so far (failed and stalled ones included).
  int64_t batches_started() const;

  /// Server-side entry point, called by Server::RunBatch at batch
  /// open. Blocks while a stall targets this batch; returns the
  /// injected failure for this batch, or Ok.
  core::Status OnBatchStart();

 private:
  mutable core::Mutex mutex_;
  /// Signalled when ReleaseStall unparks the worker.
  core::CondVar released_cv_;
  /// Signalled when a worker parks, waking AwaitStalled.
  core::CondVar stalled_cv_;
  int64_t batches_ HYGNN_GUARDED_BY(mutex_) = 0;
  int64_t stall_at_ HYGNN_GUARDED_BY(mutex_) = 0;
  bool stalled_ HYGNN_GUARDED_BY(mutex_) = false;
  bool released_ HYGNN_GUARDED_BY(mutex_) = false;
  int64_t fail_at_ HYGNN_GUARDED_BY(mutex_) = 0;
  core::Status fail_status_ HYGNN_GUARDED_BY(mutex_);
};

}  // namespace hygnn::serve

#endif  // HYGNN_SERVE_CHAOS_H_
