#include "serve/embedding_store.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "core/logging.h"
#include "obs/metrics.h"
#include "tensor/kernels/kernels.h"
#include "tensor/ops.h"
#include "tensor/sparse.h"

namespace hygnn::serve {

using core::Result;
using core::Status;

namespace {

/// Must match the LeakyRelu lambda in tensor/ops.cc exactly — the
/// incremental path applies it elementwise outside the tensor layer.
float LeakyRelu(float v, float slope) {
  return v >= 0.0f ? v : slope * v;
}

}  // namespace

std::atomic<int64_t> StoreSnapshot::live_count_{0};

const float* StoreSnapshot::Row(int32_t drug) const {
  HYGNN_CHECK(drug >= 0 && drug < num_drugs_);
  return embeddings_.data() + static_cast<int64_t>(drug) * dim_;
}

EmbeddingStore::EmbeddingStore(const model::HyGnnModel* model)
    : model_(model) {
  HYGNN_CHECK(model != nullptr);
}

void EmbeddingStore::Publish(
    std::shared_ptr<const StoreSnapshot> snapshot) {
  // One pointer assignment under the handle lock is the whole swap: a
  // reader that copies the new pointer sees the fully built buffer;
  // readers still holding the old pointer keep its bytes until their
  // shared_ptr drops (the grace period). The generation bump is
  // published before the pointer so a reader pairing Snapshot() with
  // generation() never sees a snapshot newer than the counter.
  generation_.fetch_add(1, std::memory_order_acq_rel);
  core::MutexLock handle_lock(snapshot_mutex_);
  snapshot_ = std::move(snapshot);
}

void EmbeddingStore::Invalidate() {
  core::MutexLock lock(mutex_);
  Publish(nullptr);
}

int32_t EmbeddingStore::num_drugs() const {
  const auto snapshot = Snapshot();
  return snapshot == nullptr ? 0 : snapshot->num_drugs();
}

int64_t EmbeddingStore::dim() const {
  const auto snapshot = Snapshot();
  return snapshot == nullptr ? 0 : snapshot->dim();
}

const float* EmbeddingStore::Row(int32_t drug) const {
  const auto snapshot = Snapshot();
  HYGNN_CHECK(snapshot != nullptr)
      << "embedding store is stale; Rebuild first";
  // The raw pointer outlives `snapshot` here but stays valid while the
  // store itself keeps this epoch current (see the header contract).
  return snapshot->Row(drug);
}

Status EmbeddingStore::Rebuild(const model::HypergraphContext& context) {
  core::MutexLock lock(mutex_);
  if (context.edge_features == nullptr) {
    return Status::InvalidArgument("context has no edge features");
  }
  if (context.num_nodes != model_->input_dim()) {
    return Status::InvalidArgument(
        "context/model mismatch: context has " +
        std::to_string(context.num_nodes) + " substructure nodes, model "
        "input dimension is " + std::to_string(model_->input_dim()));
  }
  tensor::InferenceModeScope inference;
  const tensor::Tensor embeddings =
      model_->EmbedDrugs(context, /*training=*/false, nullptr);
  const int32_t num_drugs = context.num_edges;
  num_nodes_ = context.num_nodes;
  std::vector<float> rows(embeddings.data(),
                          embeddings.data() + embeddings.size());

  // Snapshot the single-layer intermediates AddDrug mirrors. Deeper
  // stacks skip this (AddDrug rejects them).
  q_proj_.clear();
  edge_scores_.clear();
  incident_.assign(static_cast<size_t>(num_nodes_), {});
  if (model_->encoder().num_layers() == 1) {
    const auto& layer = model_->encoder().layer(0);
    const tensor::Tensor q_proj =
        tensor::SpMM(context.edge_features, layer.w_q());
    q_proj_.assign(q_proj.data(), q_proj.data() + q_proj.size());
    if (layer.config().use_attention) {
      const tensor::Tensor scores = tensor::MatMul(
          tensor::LeakyRelu(q_proj, layer.config().leaky_slope),
          layer.g1());
      edge_scores_.assign(scores.data(), scores.data() + scores.size());
    } else {
      edge_scores_.assign(static_cast<size_t>(num_drugs), 0.0f);
    }
    // COO pairs are sorted by (edge, node), so a single ascending scan
    // leaves every node's incident-edge list in ascending edge order —
    // the order the segment kernels visit that node's rows in.
    for (size_t r = 0; r < context.pair_nodes.size(); ++r) {
      incident_[static_cast<size_t>(context.pair_nodes[r])].push_back(
          context.pair_edges[r]);
    }
  }
  Publish(std::shared_ptr<const StoreSnapshot>(new StoreSnapshot(
      generation_.load(std::memory_order_relaxed) + 1, num_drugs,
      embeddings.cols(), std::move(rows))));
  names_.clear();
  if (obs::MetricsEnabled()) {
    obs::MetricsRegistry::Global()
        .GetCounter("serve.embedding_cache.rebuilds")
        ->Add();
  }
  return Status::Ok();
}

Result<int32_t> EmbeddingStore::AddDrug(
    const std::vector<int32_t>& substructures) {
  core::MutexLock lock(mutex_);
  return AddDrugLocked(substructures);
}

Result<int32_t> EmbeddingStore::AddDrugLocked(
    const std::vector<int32_t>& substructures) {
  namespace kernels = tensor::kernels;
  const auto current = Snapshot();
  if (current == nullptr) {
    return Status::FailedPrecondition(
        "embedding store is stale; Rebuild before AddDrug");
  }
  if (model_->encoder().num_layers() != 1) {
    return Status::FailedPrecondition(
        "incremental AddDrug requires a single-layer encoder; this model "
        "has " + std::to_string(model_->encoder().num_layers()) +
        " layers (use Rebuild on an extended hypergraph instead)");
  }
  for (int32_t id : substructures) {
    if (id < 0 || id >= num_nodes_) {
      return Status::OutOfRange(
          "substructure id " + std::to_string(id) +
          " outside the model vocabulary [0, " +
          std::to_string(num_nodes_) + ")");
    }
  }
  if (substructures.empty()) {
    // Graceful degradation: a drug whose SMILES matched no vocabulary
    // substructure still gets a (zero) row — scores against it are
    // uninformative but the catalog stays consistent.
    HYGNN_LOG(Warning) << "AddDrug: zero recognized substructures; "
                          "appending a zero embedding row";
  }
  // Hypergraph membership is a set: sort + dedup, matching what
  // Hypergraph/CsrMatrix::FromCoo do to incidence pairs.
  std::vector<int32_t> members = substructures;
  std::sort(members.begin(), members.end());
  members.erase(std::unique(members.begin(), members.end()), members.end());

  const auto& layer = model_->encoder().layer(0);
  const auto& config = layer.config();
  const int64_t hidden = config.hidden_dim;
  const int64_t out_dim = config.output_dim;
  const float slope = config.leaky_slope;
  const int32_t new_edge = current->num_drugs();
  const int64_t n_members = static_cast<int64_t>(members.size());

  // 1. Projected features of the new hyperedge: the exact CSR row
  //    product SpMM computes for this drug's H^T row.
  std::vector<float> q_new(static_cast<size_t>(hidden), 0.0f);
  if (n_members > 0) {
    const std::vector<int32_t> row_zero(members.size(), 0);
    const std::vector<float> ones(members.size(), 1.0f);
    const auto csr_row = tensor::CsrMatrix::FromCoo(1, num_nodes_, row_zero,
                                                    members, ones);
    csr_row->MultiplyInto(layer.w_q().data(), hidden, q_new.data());
  }

  // 2. Hyperedge-level attention score g1 . LeakyReLU(q_new).
  float score_new = 0.0f;
  if (config.use_attention) {
    std::vector<float> e_feat(static_cast<size_t>(hidden));
    for (int64_t j = 0; j < hidden; ++j) {
      e_feat[static_cast<size_t>(j)] = LeakyRelu(q_new[j], slope);
    }
    kernels::MatMul(e_feat.data(), layer.g1().data(), &score_new, 1, hidden,
                    1);
  }

  // 3. Re-derive p_i (and its W_p projection) for each member node with
  //    the new hyperedge in its softmax — the only nodes whose
  //    representation the new drug's embedding depends on. Each node's
  //    incident list stays ascending (the new edge id is the maximum),
  //    so the local single-segment kernels visit rows in the same order
  //    the full-context kernels would.
  std::vector<float> p_proj_members(
      static_cast<size_t>(n_members * out_dim), 0.0f);
  for (int64_t mi = 0; mi < n_members; ++mi) {
    const auto& incident = incident_[static_cast<size_t>(members[mi])];
    const int64_t n_inc = static_cast<int64_t>(incident.size()) + 1;
    std::vector<float> scores(static_cast<size_t>(n_inc), 0.0f);
    std::vector<float> gathered(static_cast<size_t>(n_inc * hidden));
    const std::vector<int32_t> seg(static_cast<size_t>(n_inc), 0);
    for (int64_t r = 0; r + 1 < n_inc; ++r) {
      const int32_t edge = incident[static_cast<size_t>(r)];
      if (config.use_attention) {
        scores[static_cast<size_t>(r)] =
            edge_scores_[static_cast<size_t>(edge)];
      }
      std::memcpy(&gathered[static_cast<size_t>(r * hidden)],
                  &q_proj_[static_cast<size_t>(edge) *
                           static_cast<size_t>(hidden)],
                  static_cast<size_t>(hidden) * sizeof(float));
    }
    if (config.use_attention) {
      scores[static_cast<size_t>(n_inc - 1)] = score_new;
    }
    std::memcpy(&gathered[static_cast<size_t>((n_inc - 1) * hidden)],
                q_new.data(), static_cast<size_t>(hidden) * sizeof(float));

    std::vector<float> y(static_cast<size_t>(n_inc));
    kernels::SegmentSoftmax(scores.data(), seg.data(), n_inc, 1, y.data());
    std::vector<float> weighted(static_cast<size_t>(n_inc * hidden), 0.0f);
    kernels::RowScaleAccumulate(y.data(), gathered.data(), weighted.data(),
                                n_inc, hidden);
    std::vector<float> p(static_cast<size_t>(hidden), 0.0f);
    kernels::SegmentSumAccumulate(weighted.data(), seg.data(), n_inc, hidden,
                                  p.data(), 1);
    for (int64_t j = 0; j < hidden; ++j) {
      p[static_cast<size_t>(j)] = LeakyRelu(p[static_cast<size_t>(j)],
                                            slope);
    }
    kernels::MatMul(p.data(), layer.w_p().data(),
                    &p_proj_members[static_cast<size_t>(mi * out_dim)], 1,
                    hidden, out_dim);
  }

  // 4. Node-level attention over the new hyperedge's members, then the
  //    weighted aggregation that yields its embedding.
  std::vector<float> member_scores(static_cast<size_t>(n_members), 0.0f);
  if (config.use_attention && n_members > 0) {
    const int64_t cat = out_dim + hidden;
    std::vector<float> v_feat(static_cast<size_t>(n_members * cat));
    for (int64_t mi = 0; mi < n_members; ++mi) {
      float* row = &v_feat[static_cast<size_t>(mi * cat)];
      const float* p_row = &p_proj_members[static_cast<size_t>(mi * out_dim)];
      for (int64_t o = 0; o < out_dim; ++o) {
        row[o] = LeakyRelu(p_row[o], slope);
      }
      for (int64_t j = 0; j < hidden; ++j) {
        row[out_dim + j] = LeakyRelu(q_new[static_cast<size_t>(j)], slope);
      }
    }
    kernels::MatMul(v_feat.data(), layer.g2().data(), member_scores.data(),
                    n_members, cat, 1);
  }
  const std::vector<int32_t> seg(static_cast<size_t>(n_members), 0);
  std::vector<float> x(static_cast<size_t>(n_members));
  kernels::SegmentSoftmax(member_scores.data(), seg.data(), n_members, 1,
                          x.data());
  std::vector<float> weighted(static_cast<size_t>(n_members * out_dim),
                              0.0f);
  kernels::RowScaleAccumulate(x.data(), p_proj_members.data(),
                              weighted.data(), n_members, out_dim);
  const int64_t dim = current->dim();
  std::vector<float> q_out(static_cast<size_t>(out_dim), 0.0f);
  kernels::SegmentSumAccumulate(weighted.data(), seg.data(), n_members,
                                out_dim, q_out.data(), 1);
  for (int64_t o = 0; o < out_dim; ++o) {
    q_out[static_cast<size_t>(o)] =
        LeakyRelu(q_out[static_cast<size_t>(o)], slope);
  }

  // 5. Commit: build the next epoch off to the side (existing rows are
  //    byte-copied, so old-id scores stay memcmp-identical across the
  //    swap), publish it with one pointer store, and grow the
  //    mutator-side incidence index. Readers pinned to `current` are
  //    untouched; `current` itself is reclaimed when the last of them
  //    drains.
  const float* old_rows = current->num_drugs() > 0 ? current->Row(0) : nullptr;
  std::vector<float> rows;
  rows.reserve(static_cast<size_t>((new_edge + 1) * dim));
  if (old_rows != nullptr) {
    rows.assign(old_rows, old_rows + static_cast<int64_t>(new_edge) * dim);
  }
  rows.insert(rows.end(), q_out.begin(), q_out.end());
  Publish(std::shared_ptr<const StoreSnapshot>(new StoreSnapshot(
      generation_.load(std::memory_order_relaxed) + 1, new_edge + 1, dim,
      std::move(rows))));
  q_proj_.insert(q_proj_.end(), q_new.begin(), q_new.end());
  edge_scores_.push_back(score_new);
  for (int32_t node : members) {
    incident_[static_cast<size_t>(node)].push_back(new_edge);
  }
  if (obs::MetricsEnabled()) {
    // An AddDrug is a cache miss: the row was not in the store and had
    // to be derived incrementally (Row reads afterwards are hits).
    obs::MetricsRegistry::Global()
        .GetCounter("serve.embedding_cache.misses")
        ->Add();
    obs::MetricsRegistry::Global()
        .GetCounter("serve.embedding_cache.swaps")
        ->Add();
  }
  return new_edge;
}

Result<int32_t> EmbeddingStore::AddDrugSmiles(
    const data::SubstructureFeaturizer& featurizer,
    const std::string& smiles) {
  core::MutexLock lock(mutex_);
  if (featurizer.num_substructures() != num_nodes_) {
    return Status::InvalidArgument(
        "featurizer/model mismatch: featurizer vocabulary has " +
        std::to_string(featurizer.num_substructures()) +
        " substructures, store was built for " +
        std::to_string(num_nodes_));
  }
  auto ids = featurizer.SegmentNewSmiles(smiles);
  if (!ids.ok()) return ids.status();
  return AddDrugLocked(ids.value());
}

Result<int32_t> EmbeddingStore::AddDrugNamed(
    const std::string& external_id,
    const std::vector<int32_t>& substructures) {
  if (external_id.empty()) {
    return Status::InvalidArgument("empty external drug id");
  }
  core::MutexLock lock(mutex_);
  if (auto it = names_.find(external_id); it != names_.end()) {
    return Status::AlreadyExists(
        "drug \"" + external_id + "\" is already registered as row " +
        std::to_string(it->second));
  }
  auto row = AddDrugLocked(substructures);
  if (!row.ok()) return row.status();
  names_.emplace(external_id, row.value());
  return row;
}

Result<int32_t> EmbeddingStore::FindDrug(
    const std::string& external_id) const {
  core::MutexLock lock(mutex_);
  auto it = names_.find(external_id);
  if (it == names_.end()) {
    return Status::NotFound("no drug registered as \"" + external_id +
                            "\"");
  }
  return it->second;
}

}  // namespace hygnn::serve
