#include "serve/server.h"

#include <string>

#include "core/logging.h"
#include "obs/metrics.h"
#include "obs/optime.h"

namespace hygnn::serve {

namespace {

/// Pipeline-stage metric handles, fetched lazily (registration takes a
/// mutex; Observe afterwards is lock-free from any worker).
struct ServerMetrics {
  obs::Histogram* queue_wait_us;
  obs::Histogram* batch_pairs;
  obs::Histogram* batch_score_us;
};

const ServerMetrics& GetServerMetrics() {
  static const ServerMetrics metrics = [] {
    auto& registry = obs::MetricsRegistry::Global();
    // Batch sizes are counts, not latencies: power-of-two buckets up
    // to the largest batch any sane max_batch produces.
    std::vector<double> size_bounds;
    for (double bound = 1.0; bound <= 4096.0; bound *= 2.0) {
      size_bounds.push_back(bound);
    }
    return ServerMetrics{
        registry.GetHistogram("serve.server.queue_wait_us"),
        registry.GetHistogram("serve.server.batch_pairs", size_bounds),
        registry.GetHistogram("serve.server.batch_score_us")};
  }();
  return metrics;
}

}  // namespace

core::Result<ScoreResponse> Server::Pending::Wait() {
  core::MutexLock lock(mutex_);
  while (!done_) done_cv_.Wait(mutex_);
  return *result_;
}

bool Server::Pending::done() const {
  core::MutexLock lock(mutex_);
  return done_;
}

void Server::Pending::Complete(core::Result<ScoreResponse> result) {
  core::MutexLock lock(mutex_);
  HYGNN_DCHECK(!done_) << "request completed twice";
  result_.emplace(std::move(result));
  done_ = true;
  done_cv_.NotifyAll();
}

Server::Server(const model::HyGnnModel* model, const EmbeddingStore* store,
               const ServerOptions& options)
    : options_(options), scorer_(model, store), store_(store) {
  HYGNN_CHECK(store != nullptr);
}

Server::~Server() { Shutdown(); }

core::Status Server::Start() {
  if (auto s = options_.Validate(); !s.ok()) return s;
  {
    core::MutexLock lock(mutex_);
    if (shutdown_) {
      return core::Status::FailedPrecondition("server already shut down");
    }
    if (started_) {
      return core::Status::FailedPrecondition("server already started");
    }
    started_ = true;
  }
  workers_.reserve(static_cast<size_t>(options_.workers));
  for (int32_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return core::Status::Ok();
}

void Server::Shutdown() {
  std::deque<std::shared_ptr<Pending>> orphans;
  {
    core::MutexLock lock(mutex_);
    shutdown_ = true;
    // Workers drain the queue before exiting; without workers the
    // queue would strand its waiters, so those requests are failed
    // inline below instead.
    if (!started_) orphans.swap(queue_);
    queue_nonempty_.NotifyAll();
  }
  for (auto& worker : workers_) worker.Join();
  for (const auto& pending : orphans) {
    pending->Complete(core::Status::FailedPrecondition(
        "server shut down before Start; request was never scored"));
    completed_.fetch_add(1, std::memory_order_relaxed);
  }
}

core::Result<std::shared_ptr<Server::Pending>> Server::SubmitAsync(
    ScoreRequest request) {
  // Validate before admission so a malformed request is refused with a
  // precise error instead of poisoning the batch it would join.
  if (!store_->valid()) {
    return core::Status::FailedPrecondition(
        "embedding store is stale; Rebuild before scoring");
  }
  const int32_t num_drugs = store_->num_drugs();
  for (size_t i = 0; i < request.pairs.size(); ++i) {
    const auto& pair = request.pairs[i];
    if (pair.a < 0 || pair.a >= num_drugs || pair.b < 0 ||
        pair.b >= num_drugs) {
      return core::Status::InvalidArgument(
          "pair " + std::to_string(i) + " = (" + std::to_string(pair.a) +
          ", " + std::to_string(pair.b) + ") outside catalog of " +
          std::to_string(num_drugs) + " drugs");
    }
  }
  auto pending =
      std::shared_ptr<Pending>(new Pending(std::move(request)));
  if (obs::MetricsEnabled()) pending->enqueue_nanos_ = obs::NowNanos();
  {
    core::MutexLock lock(mutex_);
    if (shutdown_) {
      return core::Status::FailedPrecondition(
          "server is shut down and no longer accepts requests");
    }
    if (queue_.size() >= static_cast<size_t>(options_.queue_capacity)) {
      shed_.fetch_add(1, std::memory_order_relaxed);
      return core::Status::ResourceExhausted(
          "request queue at capacity (" +
          std::to_string(options_.queue_capacity) +
          "); shedding — retry after backoff");
    }
    queue_.push_back(pending);
    queue_nonempty_.NotifyOne();
  }
  accepted_.fetch_add(1, std::memory_order_relaxed);
  return pending;
}

core::Result<ScoreResponse> Server::Score(ScoreRequest request) {
  auto pending = SubmitAsync(std::move(request));
  if (!pending.ok()) return pending.status();
  return pending.value()->Wait();
}

Server::Stats Server::stats() const {
  Stats stats;
  stats.accepted = accepted_.load(std::memory_order_relaxed);
  stats.shed = shed_.load(std::memory_order_relaxed);
  stats.completed = completed_.load(std::memory_order_relaxed);
  stats.batches = batches_.load(std::memory_order_relaxed);
  return stats;
}

void Server::WorkerLoop() {
  while (true) {
    auto batch = NextBatch();
    if (batch.empty()) return;  // shutdown, queue drained
    RunBatch(batch);
  }
}

std::vector<std::shared_ptr<Server::Pending>> Server::NextBatch() {
  std::vector<std::shared_ptr<Pending>> batch;
  const bool record = obs::MetricsEnabled();
  obs::Histogram* queue_wait_us =
      record ? GetServerMetrics().queue_wait_us : nullptr;
  int64_t total_pairs = 0;
  // The pop-and-record steps are written out at both sites below
  // rather than factored into a lambda: Thread Safety Analysis cannot
  // see through lambda bodies, and queue_ is GUARDED_BY(mutex_).
  core::MutexLock lock(mutex_);
  while (queue_.empty() && !shutdown_) queue_nonempty_.Wait(mutex_);
  if (queue_.empty()) return batch;  // shutdown && drained
  batch.push_back(std::move(queue_.front()));
  queue_.pop_front();
  total_pairs += static_cast<int64_t>(batch.back()->request_.pairs.size());
  const uint64_t open_nanos = obs::NowNanos();
  if (queue_wait_us != nullptr && batch.back()->enqueue_nanos_ != 0) {
    queue_wait_us->Observe(
        static_cast<double>(open_nanos - batch.back()->enqueue_nanos_) /
        1e3);
  }
  // Dynamic batching: keep the batch open until it holds max_batch
  // pairs or has been open max_wait_us, whichever comes first. A
  // shutdown closes it immediately so draining stays fast.
  while (total_pairs < options_.max_batch) {
    if (!queue_.empty()) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
      total_pairs +=
          static_cast<int64_t>(batch.back()->request_.pairs.size());
      if (queue_wait_us != nullptr && batch.back()->enqueue_nanos_ != 0) {
        queue_wait_us->Observe(
            static_cast<double>(obs::NowNanos() -
                                batch.back()->enqueue_nanos_) /
            1e3);
      }
      continue;
    }
    if (shutdown_) break;
    const int64_t elapsed_us =
        static_cast<int64_t>((obs::NowNanos() - open_nanos) / 1000);
    const int64_t remaining_us = options_.max_wait_us - elapsed_us;
    if (remaining_us <= 0) break;
    // Timeout or wakeup — the loop re-checks the queue and the clock
    // either way, so the return value is deliberately ignored.
    queue_nonempty_.WaitFor(mutex_, remaining_us);
  }
  return batch;
}

void Server::RunBatch(const std::vector<std::shared_ptr<Pending>>& batch) {
  batches_.fetch_add(1, std::memory_order_relaxed);
  const bool record = obs::MetricsEnabled();
  const ServerMetrics* metrics = record ? &GetServerMetrics() : nullptr;
  // One scorer invocation for the whole batch: the decoder treats each
  // pair row independently and the scorer's chunk partition is fixed,
  // so per-request scores match scoring each request alone bit-for-bit.
  ScoreRequest merged;
  size_t total_pairs = 0;
  for (const auto& pending : batch) {
    total_pairs += pending->request_.pairs.size();
  }
  merged.pairs.reserve(total_pairs);
  for (const auto& pending : batch) {
    merged.pairs.insert(merged.pairs.end(), pending->request_.pairs.begin(),
                        pending->request_.pairs.end());
  }
  if (record) {
    metrics->batch_pairs->Observe(static_cast<double>(total_pairs));
  }
  obs::Timer score_timer;
  auto scored = scorer_.ScorePairs(merged);
  if (record) {
    metrics->batch_score_us->Observe(score_timer.ElapsedMicros());
  }
  if (!scored.ok()) {
    // Batch-level failure (e.g. the store went stale between admission
    // and scoring): every request in the batch gets the typed error.
    for (const auto& pending : batch) {
      pending->Complete(scored.status());
      completed_.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }
  const std::vector<float>& scores = scored.value().scores;
  size_t offset = 0;
  for (const auto& pending : batch) {
    const size_t count = pending->request_.pairs.size();
    ScoreResponse response;
    response.scores.assign(
        scores.begin() + static_cast<ptrdiff_t>(offset),
        scores.begin() + static_cast<ptrdiff_t>(offset + count));
    offset += count;
    pending->Complete(std::move(response));
    completed_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace hygnn::serve
