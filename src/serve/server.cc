#include "serve/server.h"

#include <string>

#include "core/logging.h"
#include "obs/metrics.h"
#include "obs/optime.h"
#include "serve/chaos.h"

namespace hygnn::serve {

namespace {

/// Pipeline-stage metric handles, fetched lazily (registration takes a
/// mutex; Observe afterwards is lock-free from any worker).
struct ServerMetrics {
  obs::Histogram* queue_wait_us;
  obs::Histogram* batch_pairs;
  obs::Histogram* batch_score_us;
  /// Numeric Server::Health (0 serving / 1 degraded / 2 draining /
  /// 3 swapping).
  obs::Gauge* health;
};

const ServerMetrics& GetServerMetrics() {
  static const ServerMetrics metrics = [] {
    auto& registry = obs::MetricsRegistry::Global();
    // Batch sizes are counts, not latencies: power-of-two buckets up
    // to the largest batch any sane max_batch produces.
    std::vector<double> size_bounds;
    for (double bound = 1.0; bound <= 4096.0; bound *= 2.0) {
      size_bounds.push_back(bound);
    }
    return ServerMetrics{
        registry.GetHistogram("serve.server.queue_wait_us"),
        registry.GetHistogram("serve.server.batch_pairs", size_bounds),
        registry.GetHistogram("serve.server.batch_score_us"),
        registry.GetGauge("serve.server.health")};
  }();
  return metrics;
}

}  // namespace

core::Result<ScoreResponse> Server::Pending::Wait() {
  core::MutexLock lock(mutex_);
  while (!done_) done_cv_.Wait(mutex_);
  return *result_;
}

core::Result<ScoreResponse> Server::Pending::WaitFor(int64_t timeout_us) {
  // A *wall-time* bound on the caller's patience, not the request's
  // server-side deadline — so it runs on the real monotonic clock
  // (obs::NowNanos), not the core::Clock seam: a ManualClock cannot
  // wake a blocked condition variable, and a caller that asked to be
  // unblocked in N real microseconds must be.
  const uint64_t start_nanos = obs::NowNanos();
  core::MutexLock lock(mutex_);
  while (!done_) {
    const int64_t remaining_us =
        timeout_us - static_cast<int64_t>(
                         (obs::NowNanos() - start_nanos) / 1000);
    if (remaining_us <= 0) {
      return core::Status::DeadlineExceeded(
          "result not ready within " + std::to_string(timeout_us) +
          " us; the request is still in flight (Wait again to observe "
          "its eventual result)");
    }
    // Timeout or wakeup — the loop re-checks done_ and the clock
    // either way, so the return value is deliberately ignored.
    done_cv_.WaitFor(mutex_, remaining_us);
  }
  return *result_;
}

bool Server::Pending::done() const {
  core::MutexLock lock(mutex_);
  return done_;
}

void Server::Pending::Complete(core::Result<ScoreResponse> result) {
  core::MutexLock lock(mutex_);
  HYGNN_DCHECK(!done_) << "request completed twice";
  result_.emplace(std::move(result));
  done_ = true;
  done_cv_.NotifyAll();
}

Server::Server(const model::HyGnnModel* model, const EmbeddingStore* store,
               const ServerOptions& options)
    : options_(options),
      scorer_(model, store),
      store_(store),
      clock_(&core::ActiveClock()) {
  HYGNN_CHECK(store != nullptr);
}

Server::~Server() { Shutdown(); }

core::Status Server::Start() {
  if (auto s = options_.Validate(); !s.ok()) return s;
  {
    core::MutexLock lock(mutex_);
    if (shutdown_) {
      return core::Status::FailedPrecondition("server already shut down");
    }
    if (started_) {
      return core::Status::FailedPrecondition("server already started");
    }
    started_ = true;
  }
  workers_.reserve(static_cast<size_t>(options_.workers));
  for (int32_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return core::Status::Ok();
}

void Server::Shutdown() {
  std::deque<std::shared_ptr<Pending>> orphans;
  {
    core::MutexLock lock(mutex_);
    shutdown_ = true;
    // Workers drain the queue before exiting; without workers the
    // queue would strand its waiters, so those requests are failed
    // inline below instead.
    if (!started_) orphans.swap(queue_);
    PublishHealthLocked();
    queue_nonempty_.NotifyAll();
  }
  for (auto& worker : workers_) worker.Join();
  for (const auto& pending : orphans) {
    pending->Complete(core::Status::FailedPrecondition(
        "server shut down before Start; request was never scored"));
    completed_.fetch_add(1, std::memory_order_release);
  }
}

core::Result<std::shared_ptr<Server::Pending>> Server::SubmitAsync(
    ScoreRequest request) {
  // Validate before admission so a malformed request is refused with a
  // precise error instead of poisoning the batch it would join.
  if (request.timeout_us < 0) {
    return core::Status::InvalidArgument(
        "timeout_us must be >= 0 (0 = no deadline), got " +
        std::to_string(request.timeout_us));
  }
  // Validate against the *current* epoch. Pinning a snapshot makes the
  // num_drugs read and any concurrent swap well-ordered; the request's
  // batch pins its own (possibly newer) epoch at batch open.
  const auto snapshot = store_->Snapshot();
  if (snapshot == nullptr) {
    return core::Status::FailedPrecondition(
        "embedding store is stale; Rebuild before scoring");
  }
  const int32_t num_drugs = snapshot->num_drugs();
  for (size_t i = 0; i < request.pairs.size(); ++i) {
    const auto& pair = request.pairs[i];
    if (pair.a < 0 || pair.a >= num_drugs || pair.b < 0 ||
        pair.b >= num_drugs) {
      return core::Status::InvalidArgument(
          "pair " + std::to_string(i) + " = (" + std::to_string(pair.a) +
          ", " + std::to_string(pair.b) + ") outside catalog of " +
          std::to_string(num_drugs) + " drugs");
    }
  }
  const uint64_t now_nanos = clock_->NowNanos();
  auto pending =
      std::shared_ptr<Pending>(new Pending(std::move(request)));
  if (pending->request_.timeout_us > 0) {
    pending->deadline_nanos_ =
        now_nanos +
        static_cast<uint64_t>(pending->request_.timeout_us) * 1000;
  }
  if (obs::MetricsEnabled()) pending->enqueue_nanos_ = obs::NowNanos();
  {
    core::MutexLock lock(mutex_);
    if (shutdown_) {
      return core::Status::FailedPrecondition(
          "server is shut down and no longer accepts requests");
    }
    const int64_t est_wait_us = EstimatedWaitUsLocked();
    // Deadline-aware admission: once the EWMA is warm, a request that
    // cannot make its deadline through the current queue is dead on
    // arrival — shed it now with a typed error and a hint, instead of
    // queueing it to expire (which would still cost a queue slot and a
    // batch-close check).
    if (pending->deadline_nanos_ != 0 && est_wait_us > 0 &&
        now_nanos + static_cast<uint64_t>(est_wait_us) * 1000 >
            pending->deadline_nanos_) {
      shed_.fetch_add(1, std::memory_order_relaxed);
      retried_after_hint_.fetch_add(1, std::memory_order_relaxed);
      PublishHealthLocked();
      return core::Status::ResourceExhausted(
          "deadline of " + std::to_string(pending->request_.timeout_us) +
          " us cannot be met (estimated wait ~" +
          std::to_string(est_wait_us) +
          " us through a queue of " + std::to_string(queue_.size()) +
          "); shedding — retry after ~" + std::to_string(est_wait_us) +
          " us");
    }
    if (queue_.size() >= static_cast<size_t>(options_.queue_capacity)) {
      shed_.fetch_add(1, std::memory_order_relaxed);
      std::string message = "request queue at capacity (" +
                            std::to_string(options_.queue_capacity) +
                            "); shedding — retry after";
      if (est_wait_us > 0) {
        // The estimated drain time is the best available retry-after
        // hint; before the first batch completes there is none.
        retried_after_hint_.fetch_add(1, std::memory_order_relaxed);
        message += " ~" + std::to_string(est_wait_us) + " us";
      } else {
        message += " backoff";
      }
      PublishHealthLocked();
      return core::Status::ResourceExhausted(std::move(message));
    }
    queue_.push_back(pending);
    // Counted before the lock releases: a worker can only pop the
    // request after this critical section, so a concurrent stats()
    // sample can never observe its completion without its admission
    // (completed > accepted is impossible, not just unlikely).
    accepted_.fetch_add(1, std::memory_order_relaxed);
    PublishHealthLocked();
    queue_nonempty_.NotifyOne();
  }
  return pending;
}

core::Result<ScoreResponse> Server::Score(ScoreRequest request) {
  auto pending = SubmitAsync(std::move(request));
  if (!pending.ok()) return pending.status();
  return pending.value()->Wait();
}

Server::Stats Server::stats() const {
  Stats stats;
  // completed_ is sampled BEFORE accepted_ (and incremented with
  // release ordering, the acquire below pairing with it): every
  // completion's admission was counted before the completion, so this
  // read order makes completed <= accepted hold in every concurrent
  // sample, not just at quiescence. Reading accepted_ first would let
  // requests admitted-and-completed between the two loads surface as
  // completed > accepted.
  stats.completed = completed_.load(std::memory_order_acquire);
  stats.accepted = accepted_.load(std::memory_order_relaxed);
  stats.shed = shed_.load(std::memory_order_relaxed);
  stats.batches = batches_.load(std::memory_order_relaxed);
  stats.expired = expired_.load(std::memory_order_relaxed);
  stats.retried_after_hint =
      retried_after_hint_.load(std::memory_order_relaxed);
  return stats;
}

Server::Health Server::health() const {
  core::MutexLock lock(mutex_);
  return HealthLocked();
}

Server::Health Server::HealthLocked() const {
  if (shutdown_) return Health::kDraining;
  if (queue_.size() * 2 >= static_cast<size_t>(options_.queue_capacity)) {
    return Health::kDegraded;
  }
  // The brief swap transition: some in-flight batch is pinned to an
  // epoch the store has since superseded. Ends when that batch drains
  // (its FinishBatch releases the pin). Reported below kDegraded so a
  // swap never hides queue pressure.
  if (!pinned_generations_.empty() &&
      *pinned_generations_.begin() < store_->generation()) {
    return Health::kSwapping;
  }
  return Health::kServing;
}

void Server::PublishHealthLocked() {
  if (!obs::MetricsEnabled()) return;
  GetServerMetrics().health->Set(
      static_cast<double>(static_cast<int32_t>(HealthLocked())));
}

int64_t Server::EstimatedWaitUsLocked() const {
  if (ewma_batch_us_ <= 0.0) return 0;  // cold: no batch completed yet
  // Worst case every queued request closes its own batch, spread over
  // the worker pool; the incoming request itself is the +1.
  const double batches_ahead = static_cast<double>(queue_.size()) + 1.0;
  const double est_us =
      ewma_batch_us_ * batches_ahead / static_cast<double>(options_.workers);
  return est_us < 1.0 ? 1 : static_cast<int64_t>(est_us);
}

void Server::CompleteExpiredRequest(
    const std::shared_ptr<Pending>& pending) {
  pending->Complete(core::Status::DeadlineExceeded(
      "deadline of " + std::to_string(pending->request_.timeout_us) +
      " us passed before the request was scored"));
  expired_.fetch_add(1, std::memory_order_relaxed);
  completed_.fetch_add(1, std::memory_order_release);
}

void Server::WorkerLoop() {
  while (true) {
    auto batch = NextBatch();
    if (batch.empty()) return;  // shutdown, queue drained
    RunBatch(batch);
  }
}

std::vector<std::shared_ptr<Server::Pending>> Server::NextBatch() {
  std::vector<std::shared_ptr<Pending>> batch;
  const bool record = obs::MetricsEnabled();
  obs::Histogram* queue_wait_us =
      record ? GetServerMetrics().queue_wait_us : nullptr;
  int64_t total_pairs = 0;
  uint64_t open_nanos = 0;
  // The pop-expire-record steps are written out at both sites below
  // rather than factored into a lambda: Thread Safety Analysis cannot
  // see through lambda bodies, and queue_ is GUARDED_BY(mutex_).
  core::MutexLock lock(mutex_);
  // Open the batch with the oldest *live* request. Requests whose
  // deadline passed while they queued are completed with
  // DeadlineExceeded right here — promptly, not parked until the next
  // batch happens to close (CompleteExpiredRequest only takes the
  // Pending's own lock; no path acquires mutex_ after it, so the
  // nested acquisition cannot deadlock).
  while (batch.empty()) {
    while (queue_.empty() && !shutdown_) queue_nonempty_.Wait(mutex_);
    if (queue_.empty()) return batch;  // shutdown && drained
    std::shared_ptr<Pending> pending = std::move(queue_.front());
    queue_.pop_front();
    if (pending->deadline_nanos_ != 0 &&
        clock_->NowNanos() >= pending->deadline_nanos_) {
      CompleteExpiredRequest(pending);
      continue;
    }
    total_pairs += static_cast<int64_t>(pending->request_.pairs.size());
    open_nanos = clock_->NowNanos();
    if (queue_wait_us != nullptr && pending->enqueue_nanos_ != 0) {
      queue_wait_us->Observe(
          static_cast<double>(obs::NowNanos() - pending->enqueue_nanos_) /
          1e3);
    }
    batch.push_back(std::move(pending));
  }
  // Dynamic batching: keep the batch open until it holds max_batch
  // pairs or has been open max_wait_us, whichever comes first. A
  // shutdown closes it immediately so draining stays fast.
  while (total_pairs < options_.max_batch) {
    if (!queue_.empty()) {
      std::shared_ptr<Pending> pending = std::move(queue_.front());
      queue_.pop_front();
      if (pending->deadline_nanos_ != 0 &&
          clock_->NowNanos() >= pending->deadline_nanos_) {
        CompleteExpiredRequest(pending);
        continue;
      }
      total_pairs += static_cast<int64_t>(pending->request_.pairs.size());
      if (queue_wait_us != nullptr && pending->enqueue_nanos_ != 0) {
        queue_wait_us->Observe(
            static_cast<double>(obs::NowNanos() -
                                pending->enqueue_nanos_) /
            1e3);
      }
      batch.push_back(std::move(pending));
      continue;
    }
    if (shutdown_) break;
    const int64_t elapsed_us =
        static_cast<int64_t>((clock_->NowNanos() - open_nanos) / 1000);
    const int64_t remaining_us = options_.max_wait_us - elapsed_us;
    if (remaining_us <= 0) break;
    // Wakeup (true) re-checks the queue and the seam clock; a real-time
    // timeout (false) closes the batch outright — under a ManualClock
    // the seam's elapsed time never advances on its own, and the batch
    // window must still be bounded in wall time.
    if (!queue_nonempty_.WaitFor(mutex_, remaining_us)) break;
  }
  return batch;
}

void Server::FailBatch(const std::vector<std::shared_ptr<Pending>>& batch,
                       const core::Status& status) {
  // Even in a failed batch the deadline contract holds: a waiter whose
  // deadline has passed was "never scored within its deadline" and
  // gets DeadlineExceeded (counted in expired), not the batch error —
  // the same result it would have observed had the batch succeeded.
  const uint64_t now_nanos = clock_->NowNanos();
  for (const auto& pending : batch) {
    if (pending->deadline_nanos_ != 0 &&
        now_nanos >= pending->deadline_nanos_) {
      CompleteExpiredRequest(pending);
      continue;
    }
    pending->Complete(status);
    completed_.fetch_add(1, std::memory_order_release);
  }
}

void Server::RunBatch(const std::vector<std::shared_ptr<Pending>>& batch) {
  batches_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t service_start_nanos = clock_->NowNanos();
  // Pin this batch's catalog epoch: one snapshot for validation and
  // every row read, taken BEFORE the chaos hook so a stalled worker
  // holds its pre-stall epoch across any swap published while it is
  // parked. The pin is registered for the health check and released in
  // FinishBatch; the snapshot itself lives until this frame unwinds,
  // which is what delays old-epoch reclamation until the batch drains.
  const auto snapshot = store_->Snapshot();
  const uint64_t pinned_generation =
      snapshot != nullptr ? snapshot->generation() : store_->generation();
  {
    core::MutexLock lock(mutex_);
    pinned_generations_.insert(pinned_generation);
  }
  // Chaos seam: may park this worker (injected stall) or fail the
  // whole batch with an injected status — which must flow to every
  // live waiter as a typed result, exactly like a real scoring
  // failure.
  if (options_.chaos != nullptr) {
    if (auto injected = options_.chaos->OnBatchStart(); !injected.ok()) {
      FailBatch(batch, injected);
      FinishBatch(service_start_nanos, pinned_generation);
      return;
    }
  }
  const bool record = obs::MetricsEnabled();
  const ServerMetrics* metrics = record ? &GetServerMetrics() : nullptr;
  // One scorer invocation for the whole batch: the decoder treats each
  // pair row independently and the scorer's chunk partition is fixed,
  // so per-request scores match scoring each request alone bit-for-bit.
  ScoreRequest merged;
  size_t total_pairs = 0;
  for (const auto& pending : batch) {
    total_pairs += pending->request_.pairs.size();
  }
  merged.pairs.reserve(total_pairs);
  for (const auto& pending : batch) {
    merged.pairs.insert(merged.pairs.end(), pending->request_.pairs.begin(),
                        pending->request_.pairs.end());
  }
  if (record) {
    metrics->batch_pairs->Observe(static_cast<double>(total_pairs));
  }
  obs::Timer score_timer;
  auto scored = scorer_.ScorePairs(merged, snapshot);
  if (record) {
    metrics->batch_score_us->Observe(score_timer.ElapsedMicros());
  }
  if (!scored.ok()) {
    // Batch-level failure, typed: the store went stale (null snapshot
    // after Invalidate) or the pinned epoch no longer covers an id the
    // request was admitted under (catalog shrank in a Rebuild). Every
    // live request in the batch gets the typed error — never a torn or
    // stale-row score.
    FailBatch(batch, scored.status());
    FinishBatch(service_start_nanos, pinned_generation);
    return;
  }
  const std::vector<float>& scores = scored.value().scores;
  // Post-score expiry: the deadline may have passed while the batch
  // was being scored (or stalled). The waiter asked for the result
  // within its deadline or not at all, so it gets the typed error;
  // the computed scores are withheld, never delivered late.
  const uint64_t delivery_nanos = clock_->NowNanos();
  size_t offset = 0;
  for (const auto& pending : batch) {
    const size_t count = pending->request_.pairs.size();
    if (pending->deadline_nanos_ != 0 &&
        delivery_nanos >= pending->deadline_nanos_) {
      CompleteExpiredRequest(pending);
      offset += count;
      continue;
    }
    ScoreResponse response;
    response.scores.assign(
        scores.begin() + static_cast<ptrdiff_t>(offset),
        scores.begin() + static_cast<ptrdiff_t>(offset + count));
    offset += count;
    pending->Complete(std::move(response));
    completed_.fetch_add(1, std::memory_order_release);
  }
  FinishBatch(service_start_nanos, pinned_generation);
}

void Server::FinishBatch(uint64_t service_start_nanos,
                         uint64_t pinned_generation) {
  const double sample_us =
      static_cast<double>(clock_->NowNanos() - service_start_nanos) / 1e3;
  core::MutexLock lock(mutex_);
  // Release this batch's epoch pin. The multiset erase removes exactly
  // one entry, so concurrent workers pinned to the same generation keep
  // their own pins.
  pinned_generations_.erase(pinned_generations_.find(pinned_generation));
  // First completed batch seeds the EWMA; afterwards standard
  // exponential smoothing. A ManualClock that never advances keeps the
  // EWMA cold (sample 0), which tests use to isolate admission
  // behavior from service-time estimation.
  if (sample_us > 0.0) {
    ewma_batch_us_ = ewma_batch_us_ == 0.0
                         ? sample_us
                         : options_.ewma_alpha * sample_us +
                               (1.0 - options_.ewma_alpha) * ewma_batch_us_;
  }
  PublishHealthLocked();
}

}  // namespace hygnn::serve
