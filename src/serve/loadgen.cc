#include "serve/loadgen.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <deque>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "core/logging.h"
#include "core/thread_pool.h"
#include "obs/optime.h"

namespace hygnn::serve {

namespace {

/// One submitter's view of an in-flight request.
struct Outstanding {
  std::shared_ptr<Server::Pending> pending;
  uint64_t submit_nanos = 0;
};

/// Tally one submitter accumulates locally (merged after join, so the
/// hot loop shares nothing with its siblings).
struct SubmitterTally {
  uint64_t submitted = 0;
  uint64_t attempts = 0;
  uint64_t completed = 0;
  uint64_t shed = 0;
  uint64_t failed = 0;
  uint64_t expired = 0;
  uint64_t retried = 0;
  uint64_t retried_ok = 0;
  std::vector<double> latencies_us;
};

/// Pops every finished request off the front of `outstanding`,
/// recording its latency. `blocking` waits for all of them (drain).
void Reap(std::deque<Outstanding>* outstanding, SubmitterTally* tally,
          bool blocking) {
  while (!outstanding->empty()) {
    Outstanding& front = outstanding->front();
    if (!blocking && !front.pending->done()) break;
    const auto result = front.pending->Wait();
    const double latency_us =
        static_cast<double>(obs::NowNanos() - front.submit_nanos) / 1e3;
    if (result.ok()) {
      ++tally->completed;
      tally->latencies_us.push_back(latency_us);
    } else if (result.status().code() ==
               core::StatusCode::kDeadlineExceeded) {
      ++tally->expired;
    } else {
      ++tally->failed;
    }
    outstanding->pop_front();
  }
}

/// Exact order-statistic percentile (linear interpolation between
/// adjacent ranks) over an ascending-sorted sample.
double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

LoadReport RunLoad(Server* server, std::span<const ScoreRequest> requests,
                   const LoadConfig& config) {
  HYGNN_CHECK(server != nullptr);
  HYGNN_CHECK(!requests.empty());
  HYGNN_CHECK(config.offered_qps > 0.0);
  HYGNN_CHECK(config.duration_seconds > 0.0);
  HYGNN_CHECK(config.submitters >= 1);

  const int32_t submitters = config.submitters;
  const double per_thread_qps =
      config.offered_qps / static_cast<double>(submitters);
  const auto interval_nanos =
      static_cast<uint64_t>(std::llround(1e9 / per_thread_qps));
  const auto window_nanos =
      static_cast<uint64_t>(config.duration_seconds * 1e9);

  std::vector<SubmitterTally> tallies(static_cast<size_t>(submitters));
  const uint64_t start_nanos = obs::NowNanos();
  {
    std::vector<core::WorkerThread> threads;
    threads.reserve(static_cast<size_t>(submitters));
    for (int32_t t = 0; t < submitters; ++t) {
      threads.emplace_back([server, requests, t, submitters, interval_nanos,
                            window_nanos, start_nanos, &tallies, &config] {
        SubmitterTally& tally = tallies[static_cast<size_t>(t)];
        std::deque<Outstanding> outstanding;
        // One policy per submitter, seed forked by thread index: the
        // backoff schedule is reproducible but not lockstep across
        // threads.
        std::optional<RetryPolicy> policy;
        if (config.retry) {
          policy.emplace(config.retry_options,
                         config.retry_seed + static_cast<uint64_t>(t));
        }
        // Request i of this thread is globally request t + i*submitters,
        // scheduled at start + i*interval: deterministic pacing with
        // burst catch-up (no sleep when behind schedule).
        for (uint64_t i = 0;; ++i) {
          const uint64_t due_nanos = start_nanos + i * interval_nanos;
          if (due_nanos - start_nanos >= window_nanos) break;
          uint64_t now = obs::NowNanos();
          if (now < due_nanos) {
            std::this_thread::sleep_for(
                std::chrono::nanoseconds(due_nanos - now));
            now = obs::NowNanos();
          }
          const size_t index =
              (static_cast<size_t>(t) +
               static_cast<size_t>(i) * static_cast<size_t>(submitters)) %
              requests.size();
          ScoreRequest request = requests[index];
          if (config.timeout_us > 0) request.timeout_us = config.timeout_us;
          // One unique request per schedule slot, however many times
          // the retry loop resubmits it — counting attempts as
          // `submitted` used to overstate offered load whenever retry
          // was on.
          ++tally.submitted;
          // Latency is measured from the first attempt, so backoff
          // sleeps charge against the request like any other queueing.
          for (int32_t attempt = 1;; ++attempt) {
            ++tally.attempts;
            auto pending = server->SubmitAsync(request);
            if (pending.ok()) {
              outstanding.push_back({std::move(pending).value(), now});
              if (attempt > 1) ++tally.retried_ok;
              break;
            }
            const core::Status& status = pending.status();
            const int64_t backoff_us =
                policy ? policy->NextBackoffUs(status, attempt) : -1;
            if (backoff_us < 0) {
              if (status.code() == core::StatusCode::kResourceExhausted) {
                ++tally.shed;
              } else {
                ++tally.failed;
              }
              break;
            }
            ++tally.retried;
            if (backoff_us > 0) {
              std::this_thread::sleep_for(
                  std::chrono::microseconds(backoff_us));
            }
          }
          Reap(&outstanding, &tally, /*blocking=*/false);
        }
        Reap(&outstanding, &tally, /*blocking=*/true);
      });
    }
    // WorkerThread joins in its destructor; leaving the scope is the
    // barrier.
  }
  const double elapsed_seconds =
      static_cast<double>(obs::NowNanos() - start_nanos) / 1e9;

  LoadReport report;
  report.offered_qps = config.offered_qps;
  report.duration_seconds = config.duration_seconds;
  std::vector<double> latencies;
  for (const auto& tally : tallies) {
    report.submitted += tally.submitted;
    report.attempts += tally.attempts;
    report.completed += tally.completed;
    report.shed += tally.shed;
    report.failed += tally.failed;
    report.expired += tally.expired;
    report.retried += tally.retried;
    report.retried_ok += tally.retried_ok;
    latencies.insert(latencies.end(), tally.latencies_us.begin(),
                     tally.latencies_us.end());
  }
  std::sort(latencies.begin(), latencies.end());
  report.sustained_qps =
      elapsed_seconds > 0.0
          ? static_cast<double>(report.completed) / elapsed_seconds
          : 0.0;
  report.p50_us = Percentile(latencies, 0.50);
  report.p95_us = Percentile(latencies, 0.95);
  report.p99_us = Percentile(latencies, 0.99);
  return report;
}

}  // namespace hygnn::serve
