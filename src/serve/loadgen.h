#ifndef HYGNN_SERVE_LOADGEN_H_
#define HYGNN_SERVE_LOADGEN_H_

#include <cstdint>
#include <span>

#include "serve/request.h"
#include "serve/retry.h"
#include "serve/server.h"

namespace hygnn::serve {

/// Open-loop load generation against a serve::Server, shared by
/// bench/bench_load.cc and the CLI `serve-load` subcommand. Open-loop
/// means submitters hold their offered schedule instead of waiting for
/// responses — the only arrival model under which overload actually
/// overloads (a closed loop self-throttles and can never saturate the
/// queue), so it is what exercises the admission-control/shedding path.

struct LoadConfig {
  /// Aggregate request rate across all submitters. Each submitter
  /// paces itself at offered_qps / submitters with burst catch-up when
  /// it falls behind schedule, so the average rate holds even when a
  /// sleep overshoots.
  double offered_qps = 1000.0;
  /// Length of the offered window. Submissions stop after this;
  /// already-accepted requests are drained and still count.
  double duration_seconds = 1.0;
  /// Concurrent submitter threads (core::WorkerThread).
  int32_t submitters = 2;
  /// Per-request deadline stamped into every submitted request
  /// (ScoreRequest::timeout_us); 0 = no deadline.
  int64_t timeout_us = 0;
  /// When true, retryable admission failures (shed, admission-time
  /// DeadlineExceeded) are retried with jittered exponential backoff
  /// per `retry_options`. Each submitter gets its own RetryPolicy
  /// seeded retry_seed + thread index, so runs are reproducible.
  bool retry = false;
  RetryOptions retry_options;
  uint64_t retry_seed = 0x9e3779b97f4a7c15ULL;
};

/// What one offered-load level produced. Latency is end-to-end
/// (submit to response observed) in microseconds; percentiles are
/// exact order statistics over every completed request, not histogram
/// interpolations.
struct LoadReport {
  double offered_qps = 0.0;
  double duration_seconds = 0.0;
  /// Unique requests the generator tried to submit. A request retried
  /// after shedding still counts once here; see `attempts` for the
  /// wire-level count.
  uint64_t submitted = 0;
  /// SubmitAsync calls issued, retries included. Always equal to
  /// submitted + retried; without retry enabled, equal to submitted.
  uint64_t attempts = 0;
  /// Requests that delivered an Ok response.
  uint64_t completed = 0;
  /// Requests refused at admission with ResourceExhausted.
  uint64_t shed = 0;
  /// Accepted requests whose response was a non-Ok status (expired
  /// ones counted separately, not here).
  uint64_t failed = 0;
  /// Accepted requests that came back DeadlineExceeded — the server
  /// expired them at batch close or withheld a stale score.
  uint64_t expired = 0;
  /// Backed-off resubmissions performed (0 unless config.retry). Each
  /// retry also counts in `attempts` but not in `submitted`.
  uint64_t retried = 0;
  /// Requests that were shed at least once but eventually accepted
  /// thanks to a retry.
  uint64_t retried_ok = 0;
  /// completed / (offered window + drain time).
  double sustained_qps = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
};

/// Drives `server` at config.offered_qps for config.duration_seconds.
/// Submitters draw requests round-robin from `requests` (read-only,
/// shared; must be non-empty and outlive the call) and submit copies.
/// The server must be started. Completion is observed opportunistically
/// after each send and at drain, so a recorded latency can overstate
/// the true one by up to one pacing interval — negligible at overload,
/// where queueing dominates.
LoadReport RunLoad(Server* server, std::span<const ScoreRequest> requests,
                   const LoadConfig& config);

}  // namespace hygnn::serve

#endif  // HYGNN_SERVE_LOADGEN_H_
