#include "serve/scoring.h"

#include <algorithm>
#include <cstring>

#include "core/logging.h"
#include "core/thread_pool.h"
#include "obs/metrics.h"
#include "tensor/debug.h"

namespace hygnn::serve {

namespace {

/// Serving-side metric handles, fetched lazily so a process that never
/// enables metrics never touches the registry (registration takes a
/// mutex; Observe/Add afterwards are lock-free, safe from ParallelFor
/// workers). Handles are process-lifetime stable.
struct ScoreMetrics {
  obs::Histogram* score_us;
  obs::Histogram* gather_us;
  obs::Histogram* decode_us;
  obs::Counter* pairs_scored;
  obs::Counter* cache_hits;
};

const ScoreMetrics& GetScoreMetrics() {
  static const ScoreMetrics metrics = [] {
    auto& registry = obs::MetricsRegistry::Global();
    return ScoreMetrics{registry.GetHistogram("serve.score_us"),
                        registry.GetHistogram("serve.gather_us"),
                        registry.GetHistogram("serve.decode_us"),
                        registry.GetCounter("serve.pairs_scored"),
                        registry.GetCounter("serve.embedding_cache.hits")};
  }();
  return metrics;
}

}  // namespace

PairScorer::PairScorer(const model::HyGnnModel* model,
                       const EmbeddingStore* store)
    : model_(model), store_(store) {
  HYGNN_CHECK(model != nullptr);
  HYGNN_CHECK(store != nullptr);
}

std::vector<float> PairScorer::Score(
    std::span<const data::LabeledPair> pairs) const {
  HYGNN_CHECK(store_->valid())
      << "embedding store is stale; Rebuild before scoring";
  const int64_t n = static_cast<int64_t>(pairs.size());
  std::vector<float> scores(static_cast<size_t>(n));
  if (n == 0) return scores;
  const int64_t dim = store_->dim();
  const int32_t num_drugs = store_->num_drugs();
  for (const auto& pair : pairs) {
    HYGNN_CHECK(pair.a >= 0 && pair.a < num_drugs &&
                pair.b >= 0 && pair.b < num_drugs)
        << "pair (" << pair.a << ", " << pair.b << ") outside catalog of "
        << num_drugs << " drugs";
  }
  const bool record = obs::MetricsEnabled();
  const ScoreMetrics* metrics = record ? &GetScoreMetrics() : nullptr;
  obs::Timer score_timer;
  if (record) {
    metrics->pairs_scored->Add(static_cast<uint64_t>(n));
    // Every pair reads two precomputed embedding rows from the store.
    metrics->cache_hits->Add(static_cast<uint64_t>(2 * n));
  }
  tensor::InferenceModeScope inference;
  // Fixed-size chunks: the partition never depends on the thread count,
  // and the decoder treats each pair row independently, so chunked
  // scores match the one-shot batch bit-for-bit. Nested ParallelFor
  // calls inside the decoder kernels run inline on the worker.
  core::ParallelFor(0, n, kScoreChunkPairs, [&](int64_t lo, int64_t hi) {
    const int64_t m = hi - lo;
    tensor::Tensor q_a = tensor::Tensor::Zeros(m, dim);
    tensor::Tensor q_b = tensor::Tensor::Zeros(m, dim);
    {
      // Per-stage spans record from pool workers concurrently; Observe
      // is one relaxed fetch_add, so no cross-worker synchronization.
      obs::ScopedTimer gather_span(record ? metrics->gather_us : nullptr);
      for (int64_t i = 0; i < m; ++i) {
        const auto& pair = pairs[static_cast<size_t>(lo + i)];
        std::memcpy(q_a.data() + i * dim, store_->Row(pair.a),
                    static_cast<size_t>(dim) * sizeof(float));
        std::memcpy(q_b.data() + i * dim, store_->Row(pair.b),
                    static_cast<size_t>(dim) * sizeof(float));
      }
    }
    obs::ScopedTimer decode_span(record ? metrics->decode_us : nullptr);
    const tensor::Tensor logits =
        model_->decoder().Score(q_a, q_b, /*training=*/false, nullptr);
    // Serving contract: inference mode must keep the autograd graph
    // empty — the logits are a parentless leaf.
    HYGNN_DCHECK_EQ(tensor::GraphLint(logits).nodes_visited, 1)
        << "serving path allocated autograd graph nodes";
    for (int64_t i = 0; i < m; ++i) {
      scores[static_cast<size_t>(lo + i)] =
          model::StableSigmoid(logits.data()[i]);
    }
  });
  if (record) metrics->score_us->Observe(score_timer.ElapsedMicros());
  return scores;
}

ScreeningEngine::ScreeningEngine(const model::HyGnnModel* model,
                                 const EmbeddingStore* store)
    : store_(store), scorer_(model, store) {}

std::vector<ScreeningHit> ScreeningEngine::TopK(int32_t query,
                                                int32_t k) const {
  HYGNN_CHECK(query >= 0 && query < store_->num_drugs());
  const bool record = obs::MetricsEnabled();
  obs::Histogram* build_us = nullptr;
  obs::Histogram* score_us = nullptr;
  obs::Histogram* rank_us = nullptr;
  if (record) {
    auto& registry = obs::MetricsRegistry::Global();
    build_us = registry.GetHistogram("serve.topk_build_us");
    score_us = registry.GetHistogram("serve.topk_score_us");
    rank_us = registry.GetHistogram("serve.topk_rank_us");
  }
  std::vector<data::LabeledPair> pairs;
  {
    obs::ScopedTimer build_span(build_us);
    pairs.reserve(static_cast<size_t>(store_->num_drugs()));
    for (int32_t drug = 0; drug < store_->num_drugs(); ++drug) {
      if (drug == query) continue;
      pairs.push_back({query, drug, 0.0f});
    }
  }
  std::vector<float> scores;
  {
    obs::ScopedTimer score_span(score_us);
    scores = scorer_.Score(pairs);
  }
  obs::ScopedTimer rank_span(rank_us);
  std::vector<ScreeningHit> hits(pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    hits[i] = {pairs[i].b, scores[i]};
  }
  const size_t keep = std::min(hits.size(), static_cast<size_t>(
                                                std::max(k, 0)));
  std::partial_sort(hits.begin(),
                    hits.begin() + static_cast<ptrdiff_t>(keep), hits.end(),
                    [](const ScreeningHit& a, const ScreeningHit& b) {
                      if (a.score != b.score) return a.score > b.score;
                      return a.drug < b.drug;
                    });
  hits.resize(keep);
  return hits;
}

}  // namespace hygnn::serve
