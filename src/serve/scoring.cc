#include "serve/scoring.h"

#include <algorithm>
#include <cstring>
#include <string>
#include <utility>

#include "core/logging.h"
#include "core/thread_pool.h"
#include "obs/metrics.h"
#include "tensor/debug.h"

namespace hygnn::serve {

namespace {

/// Serving-side metric handles, fetched lazily so a process that never
/// enables metrics never touches the registry (registration takes a
/// mutex; Observe/Add afterwards are lock-free, safe from ParallelFor
/// workers). Handles are process-lifetime stable.
struct ScoreMetrics {
  obs::Histogram* score_us;
  obs::Histogram* gather_us;
  obs::Histogram* decode_us;
  obs::Counter* pairs_scored;
  obs::Counter* cache_hits;
};

const ScoreMetrics& GetScoreMetrics() {
  static const ScoreMetrics metrics = [] {
    auto& registry = obs::MetricsRegistry::Global();
    return ScoreMetrics{registry.GetHistogram("serve.score_us"),
                        registry.GetHistogram("serve.gather_us"),
                        registry.GetHistogram("serve.decode_us"),
                        registry.GetCounter("serve.pairs_scored"),
                        registry.GetCounter("serve.embedding_cache.hits")};
  }();
  return metrics;
}

/// Validates every pair id against one pinned catalog epoch. Shared by
/// ScorePairs and Screen so both report the same typed errors; a null
/// snapshot is the stale store.
core::Status ValidateAgainstSnapshot(
    const std::shared_ptr<const StoreSnapshot>& snapshot,
    std::span<const data::LabeledPair> pairs) {
  if (snapshot == nullptr) {
    return core::Status::FailedPrecondition(
        "embedding store is stale; Rebuild before scoring");
  }
  const int32_t num_drugs = snapshot->num_drugs();
  for (size_t i = 0; i < pairs.size(); ++i) {
    const auto& pair = pairs[i];
    if (pair.a < 0 || pair.a >= num_drugs || pair.b < 0 ||
        pair.b >= num_drugs) {
      return core::Status::InvalidArgument(
          "pair " + std::to_string(i) + " = (" + std::to_string(pair.a) +
          ", " + std::to_string(pair.b) + ") outside catalog of " +
          std::to_string(num_drugs) + " drugs");
    }
  }
  return core::Status::Ok();
}

}  // namespace

PairScorer::PairScorer(const model::HyGnnModel* model,
                       const EmbeddingStore* store)
    : model_(model), store_(store) {
  HYGNN_CHECK(model != nullptr);
  HYGNN_CHECK(store != nullptr);
}

core::Result<ScoreResponse> PairScorer::ScorePairs(
    const ScoreRequest& request) const {
  return ScorePairs(request, store_->Snapshot());
}

core::Result<ScoreResponse> PairScorer::ScorePairs(
    const ScoreRequest& request,
    const std::shared_ptr<const StoreSnapshot>& snapshot) const {
  if (auto s = ValidateAgainstSnapshot(snapshot, request.pairs); !s.ok()) {
    return s;
  }
  return ScoreResponse{ScoreValidated(request.pairs, *snapshot)};
}

std::vector<float> PairScorer::Score(
    std::span<const data::LabeledPair> pairs) const {
  // Deprecated shim: same validation as ScorePairs, but the historical
  // crash-on-bad-input contract (callers predating typed errors never
  // checked a status).
  const auto snapshot = store_->Snapshot();
  auto s = ValidateAgainstSnapshot(snapshot, pairs);
  HYGNN_CHECK(s.ok()) << s.ToString();
  return ScoreValidated(pairs, *snapshot);
}

std::vector<float> PairScorer::ScoreValidated(
    std::span<const data::LabeledPair> pairs,
    const StoreSnapshot& snapshot) const {
  const int64_t n = static_cast<int64_t>(pairs.size());
  std::vector<float> scores(static_cast<size_t>(n));
  if (n == 0) return scores;
  const int64_t dim = snapshot.dim();
  const bool record = obs::MetricsEnabled();
  const ScoreMetrics* metrics = record ? &GetScoreMetrics() : nullptr;
  obs::Timer score_timer;
  if (record) {
    metrics->pairs_scored->Add(static_cast<uint64_t>(n));
    // Every pair reads two precomputed embedding rows from the store.
    metrics->cache_hits->Add(static_cast<uint64_t>(2 * n));
  }
  tensor::InferenceModeScope inference;
  // Fixed-size chunks: the partition never depends on the thread count,
  // and the decoder treats each pair row independently, so chunked
  // scores match the one-shot batch bit-for-bit. Nested ParallelFor
  // calls inside the decoder kernels run inline on the worker.
  core::ParallelFor(0, n, kScoreChunkPairs, [&](int64_t lo, int64_t hi) {
    const int64_t m = hi - lo;
    tensor::Tensor q_a = tensor::Tensor::Zeros(m, dim);
    tensor::Tensor q_b = tensor::Tensor::Zeros(m, dim);
    {
      // Per-stage spans record from pool workers concurrently; Observe
      // is one relaxed fetch_add, so no cross-worker synchronization.
      obs::ScopedTimer gather_span(record ? metrics->gather_us : nullptr);
      for (int64_t i = 0; i < m; ++i) {
        const auto& pair = pairs[static_cast<size_t>(lo + i)];
        std::memcpy(q_a.data() + i * dim, snapshot.Row(pair.a),
                    static_cast<size_t>(dim) * sizeof(float));
        std::memcpy(q_b.data() + i * dim, snapshot.Row(pair.b),
                    static_cast<size_t>(dim) * sizeof(float));
      }
    }
    obs::ScopedTimer decode_span(record ? metrics->decode_us : nullptr);
    const tensor::Tensor logits =
        model_->decoder().Score(q_a, q_b, /*training=*/false, nullptr);
    for (int64_t i = 0; i < m; ++i) {
      scores[static_cast<size_t>(lo + i)] =
          model::StableSigmoid(logits.data()[i]);
    }
    // Serving contract: inference mode must keep no autograd graph.
    // The data() read above materialized the tape, which strips the
    // recording edges off no-grad nodes — checked after the read
    // because until then the pending tape nodes ARE the graph.
    HYGNN_DCHECK_EQ(tensor::GraphLint(logits).nodes_visited, 1)
        << "serving path retained autograd graph nodes";
  });
  if (record) metrics->score_us->Observe(score_timer.ElapsedMicros());
  return scores;
}

ScreeningEngine::ScreeningEngine(const model::HyGnnModel* model,
                                 const EmbeddingStore* store)
    : store_(store), scorer_(model, store) {}

core::Result<ScreenResponse> ScreeningEngine::Screen(
    const ScreenRequest& request) const {
  // One pinned epoch for the whole screen: the candidate list, every
  // row read, and the shortlist all agree even if the catalog is
  // growing concurrently.
  const auto snapshot = store_->Snapshot();
  if (snapshot == nullptr) {
    return core::Status::FailedPrecondition(
        "embedding store is stale; Rebuild before screening");
  }
  const int32_t num_drugs = snapshot->num_drugs();
  if (request.query < 0 || request.query >= num_drugs) {
    return core::Status::InvalidArgument(
        "query drug " + std::to_string(request.query) +
        " outside catalog of " + std::to_string(num_drugs) + " drugs");
  }
  if (request.top_k < 0) {
    return core::Status::InvalidArgument(
        "top_k must be >= 0, got " + std::to_string(request.top_k));
  }
  const bool record = obs::MetricsEnabled();
  obs::Histogram* build_us = nullptr;
  obs::Histogram* score_us = nullptr;
  obs::Histogram* rank_us = nullptr;
  if (record) {
    auto& registry = obs::MetricsRegistry::Global();
    build_us = registry.GetHistogram("serve.topk_build_us");
    score_us = registry.GetHistogram("serve.topk_score_us");
    rank_us = registry.GetHistogram("serve.topk_rank_us");
  }
  ScoreRequest score_request;
  {
    obs::ScopedTimer build_span(build_us);
    score_request.pairs.reserve(static_cast<size_t>(num_drugs));
    for (int32_t drug = 0; drug < num_drugs; ++drug) {
      if (drug == request.query) continue;
      score_request.pairs.push_back({request.query, drug, 0.0f});
    }
  }
  std::vector<float> scores;
  {
    obs::ScopedTimer score_span(score_us);
    auto scores_or = scorer_.ScorePairs(score_request, snapshot);
    if (!scores_or.ok()) return scores_or.status();
    scores = std::move(scores_or).value().scores;
  }
  obs::ScopedTimer rank_span(rank_us);
  ScreenResponse response;
  response.hits.resize(score_request.pairs.size());
  for (size_t i = 0; i < score_request.pairs.size(); ++i) {
    response.hits[i] = {score_request.pairs[i].b, scores[i]};
  }
  const size_t keep = std::min(response.hits.size(),
                               static_cast<size_t>(request.top_k));
  std::partial_sort(response.hits.begin(),
                    response.hits.begin() + static_cast<ptrdiff_t>(keep),
                    response.hits.end(), ScreeningHitBefore);
  response.hits.resize(keep);
  return response;
}

std::vector<ScreeningHit> ScreeningEngine::TopK(int32_t query,
                                                int32_t k) const {
  // Deprecated shim over Screen; preserves the historical contract
  // (crash on bad query, clamp negative k to an empty shortlist).
  auto response = Screen({query, std::max(k, 0)});
  HYGNN_CHECK(response.ok()) << response.status().ToString();
  return std::move(response).value().hits;
}

}  // namespace hygnn::serve
