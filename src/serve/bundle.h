#ifndef HYGNN_SERVE_BUNDLE_H_
#define HYGNN_SERVE_BUNDLE_H_

#include <string>
#include <utility>
#include <vector>

#include "chem/vocab.h"
#include "core/status.h"
#include "hygnn/model.h"
#include "tensor/tensor.h"

namespace hygnn::serve {

/// Format version written by ModelBundle::Save; Load rejects any other
/// value with a typed error naming both versions.
inline constexpr uint32_t kBundleVersion = 1;

/// A self-describing, single-file HyGNN checkpoint. Unlike the
/// deprecated weights-only SaveWeights format, a bundle carries
/// everything needed to reconstruct a servable model with no
/// caller-supplied configuration:
///
///   | section  | contents                                            |
///   |----------|-----------------------------------------------------|
///   | header   | magic "HYGB", u32 format version                    |
///   | config   | input_dim + full HyGnnConfig (encoder + decoder)    |
///   | vocab    | substructure strings + occurrence counts, by id     |
///   | weights  | named tensor table (tensor/serialize "HYGT" section)|
///
/// All integers are little-endian fixed-width; tensors are row-major
/// float32. Load validates the magic, the version, the config/vocab
/// agreement (input_dim == vocabulary size), and every weight shape
/// against the config-constructed model, returning core::Status errors
/// that name both sides of any mismatch.
struct ModelBundle {
  int64_t input_dim = 0;
  model::HyGnnConfig config;
  chem::SubstructureVocabulary vocabulary;
  /// Weights in model Parameters() order, named by role (e.g.
  /// "encoder.layer0.w_q", "decoder.param2").
  std::vector<std::pair<std::string, tensor::Tensor>> weights;

  /// Writes `model` + `vocabulary` as one bundle file. Fails when the
  /// vocabulary size disagrees with the model's input dimension.
  static core::Status Save(const model::HyGnnModel& model,
                           const chem::SubstructureVocabulary& vocabulary,
                           const std::string& path);

  /// Parses and validates a Save file.
  static core::Result<ModelBundle> Load(const std::string& path);

  /// Constructs a HyGnnModel from the bundled config and installs the
  /// bundled weights. Fails when a weight shape disagrees with what the
  /// config dictates (a hand-edited or mixed-version bundle).
  core::Result<model::HyGnnModel> BuildModel() const;
};

/// Semantic weight names in Parameters() order for a model of the given
/// configuration — the names Save writes and error messages cite.
std::vector<std::string> WeightNames(const model::HyGnnConfig& config,
                                     size_t num_parameters);

}  // namespace hygnn::serve

#endif  // HYGNN_SERVE_BUNDLE_H_
