#include "serve/retry.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "core/logging.h"

namespace hygnn::serve {

core::Status RetryOptions::Validate() const {
  if (max_attempts < 1) {
    return core::Status::InvalidArgument(
        "max_attempts must be >= 1, got " + std::to_string(max_attempts));
  }
  if (initial_backoff_us < 0 || max_backoff_us < initial_backoff_us) {
    return core::Status::InvalidArgument(
        "backoff range must satisfy 0 <= initial (" +
        std::to_string(initial_backoff_us) + ") <= max (" +
        std::to_string(max_backoff_us) + ")");
  }
  if (multiplier < 1.0) {
    return core::Status::InvalidArgument(
        "multiplier must be >= 1, got " + std::to_string(multiplier));
  }
  if (jitter < 0.0 || jitter > 1.0) {
    return core::Status::InvalidArgument(
        "jitter must be in [0, 1], got " + std::to_string(jitter));
  }
  if (retry_budget < 0) {
    return core::Status::InvalidArgument(
        "retry_budget must be >= 0, got " + std::to_string(retry_budget));
  }
  return core::Status::Ok();
}

RetryPolicy::RetryPolicy(const RetryOptions& options, uint64_t seed)
    : options_(options), rng_(seed) {
  HYGNN_CHECK(options.Validate().ok()) << options.Validate().ToString();
}

bool RetryPolicy::IsRetryable(const core::Status& status) {
  return status.code() == core::StatusCode::kResourceExhausted ||
         status.code() == core::StatusCode::kDeadlineExceeded;
}

int64_t RetryPolicy::NextBackoffUs(const core::Status& status,
                                   int32_t attempt) {
  HYGNN_DCHECK(attempt >= 1) << "attempt is 1-based";
  if (!IsRetryable(status)) return -1;
  if (attempt >= options_.max_attempts) return -1;
  if (retries_granted_ >= options_.retry_budget) return -1;
  ++retries_granted_;
  // Exponential base for this retry, capped before jitter so the cap
  // really is the worst case.
  double backoff = static_cast<double>(options_.initial_backoff_us) *
                   std::pow(options_.multiplier, attempt - 1);
  backoff = std::min(backoff, static_cast<double>(options_.max_backoff_us));
  // Jitter draws from [backoff * (1 - jitter), backoff]; one Uniform()
  // per decision keeps the rng stream in lockstep with the schedule.
  const double low = backoff * (1.0 - options_.jitter);
  const double jittered = low + (backoff - low) * rng_.Uniform();
  return static_cast<int64_t>(std::llround(jittered));
}

}  // namespace hygnn::serve
