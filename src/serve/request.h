#ifndef HYGNN_SERVE_REQUEST_H_
#define HYGNN_SERVE_REQUEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/status.h"
#include "data/drug.h"

namespace hygnn::serve {

class FaultInjectingScorer;

/// The serve request/response surface: one typed value-type contract
/// shared by the library calls (PairScorer::ScorePairs,
/// ScreeningEngine::Screen) and the serve::Server request pipeline.
/// Every entry point validates its request and reports failures as a
/// typed core::Status instead of crashing, so a malformed or mistimed
/// request from one client can never take the process down.

/// A batch of drug pairs to score. Pair ids index the serving catalog
/// (EmbeddingStore rows); labels on the pairs are ignored — only
/// (a, b) are read. An empty request is valid and yields an empty
/// response.
struct ScoreRequest {
  std::vector<data::LabeledPair> pairs;

  /// Relative deadline: the submitter needs the result within this many
  /// microseconds of admission, or not at all. 0 means no deadline.
  /// serve::Server converts it to an absolute monotonic deadline
  /// (core::ActiveClock) at SubmitAsync and never scores an expired
  /// request — it completes with DeadlineExceeded instead, checked both
  /// when its batch closes and again after scoring, so a waiter never
  /// outlives its deadline by more than one batch window. Negative
  /// values are rejected with InvalidArgument.
  int64_t timeout_us = 0;
};

/// Scores for one ScoreRequest: scores[i] is the interaction
/// probability of request.pairs[i]. Always exactly request.pairs.size()
/// entries, in request order — independent of how the server batched
/// the request (bit-identity with serial scoring is pinned by
/// tests/server_test.cc).
struct ScoreResponse {
  std::vector<float> scores;
};

/// One screening result: a catalog drug and its interaction probability
/// with the query.
struct ScreeningHit {
  int32_t drug = 0;
  float score = 0.0f;
};

/// Strict total order on screening hits: descending score with ties
/// broken by ascending drug id — the same tie-break-by-index rule the
/// AUC/F1 comparators use, so shortlist output is deterministic across
/// stdlib sort implementations (std::partial_sort is free to order
/// equivalent elements arbitrarily unless the comparator never declares
/// two distinct hits equivalent).
inline bool ScreeningHitBefore(const ScreeningHit& a,
                               const ScreeningHit& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.drug < b.drug;
}

/// Screen one catalog drug against the whole catalog.
struct ScreenRequest {
  /// Query drug id (an EmbeddingStore row).
  int32_t query = 0;
  /// Number of top candidates to return; fewer come back when the
  /// catalog is smaller. Zero is valid (an empty shortlist).
  int32_t top_k = 10;
};

/// Top candidates for one ScreenRequest, in ScreeningHitBefore order
/// (descending score, ties by ascending drug id). The query itself is
/// never a hit.
struct ScreenResponse {
  std::vector<ScreeningHit> hits;
};

/// Tuning knobs for serve::Server. The defaults favor latency: small
/// batches, sub-millisecond batching waits.
struct ServerOptions {
  /// Maximum requests queued awaiting a worker. Admission control:
  /// a Submit against a full queue is shed immediately with
  /// ResourceExhausted rather than blocking the caller.
  int32_t queue_capacity = 256;
  /// A batch closes once it holds at least this many pairs (a single
  /// request larger than max_batch still forms one batch — requests
  /// are never split).
  int32_t max_batch = 64;
  /// A batch also closes once it has been open this long, so a lone
  /// request never waits for company that may not come. Zero disables
  /// waiting entirely (every batch is whatever is queued right now).
  int64_t max_wait_us = 1000;
  /// Scorer worker threads draining the queue. They share one
  /// EmbeddingStore cache; each batch is scored on the worker that
  /// closed it.
  int32_t workers = 1;
  /// Smoothing factor of the batch-service-time EWMA behind
  /// deadline-aware admission (estimate = ewma_us * (queue depth + 1)
  /// / workers): a request whose deadline cannot survive that estimate
  /// is shed at admission with ResourceExhausted and a retry-after
  /// hint instead of being queued to die. Must be in (0, 1].
  double ewma_alpha = 0.2;
  /// Chaos seam (tests): invoked at every batch open, may stall the
  /// worker or fail the batch with an injected status. Borrowed; must
  /// outlive the server. Production servers leave it null.
  FaultInjectingScorer* chaos = nullptr;

  /// Typed validation of the knobs; Server::Start refuses to spawn on
  /// any non-Ok status.
  core::Status Validate() const {
    if (queue_capacity < 1) {
      return core::Status::InvalidArgument(
          "queue_capacity must be >= 1, got " +
          std::to_string(queue_capacity));
    }
    if (max_batch < 1) {
      return core::Status::InvalidArgument(
          "max_batch must be >= 1, got " + std::to_string(max_batch));
    }
    if (max_wait_us < 0) {
      return core::Status::InvalidArgument(
          "max_wait_us must be >= 0, got " + std::to_string(max_wait_us));
    }
    if (workers < 1) {
      return core::Status::InvalidArgument(
          "workers must be >= 1, got " + std::to_string(workers));
    }
    if (!(ewma_alpha > 0.0 && ewma_alpha <= 1.0)) {
      return core::Status::InvalidArgument(
          "ewma_alpha must be in (0, 1], got " +
          std::to_string(ewma_alpha));
    }
    return core::Status::Ok();
  }
};

}  // namespace hygnn::serve

#endif  // HYGNN_SERVE_REQUEST_H_
