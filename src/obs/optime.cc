#include "obs/optime.h"

#include <algorithm>
#include <chrono>
#include <cstring>

namespace hygnn::obs {

namespace internal {
std::atomic<bool> g_kernel_timing_enabled{false};
}  // namespace internal

namespace {

/// Fixed lock-free attribution table. Slots are claimed once per op tag
/// with a CAS on the name pointer and never released; accumulation is
/// relaxed fetch_adds, so concurrent workers aggregate without locks.
/// 64 slots is ~4x the engine's op vocabulary; an overflowing table
/// silently drops new ops rather than blocking a kernel.
constexpr size_t kMaxOps = 64;

struct OpSlot {
  std::atomic<const char*> name{nullptr};
  std::atomic<uint64_t> forward_calls{0};
  std::atomic<uint64_t> forward_nanos{0};
  std::atomic<uint64_t> backward_calls{0};
  std::atomic<uint64_t> backward_nanos{0};
};

OpSlot g_slots[kMaxOps];

/// One in-flight op span on the current thread. Ops can nest (composite
/// ops call other ops), so each thread keeps a small stack.
struct PendingSpan {
  const void* token;
  uint64_t start_nanos;
};

thread_local std::vector<PendingSpan> t_pending;

/// Finds (or claims) the slot for `op`. Tags are static strings, but
/// identical literals in different translation units may have distinct
/// addresses, so matching falls back to strcmp after the pointer check.
OpSlot* SlotFor(const char* op) {
  for (size_t i = 0; i < kMaxOps; ++i) {
    const char* name = g_slots[i].name.load(std::memory_order_acquire);
    if (name == nullptr) {
      const char* expected = nullptr;
      if (g_slots[i].name.compare_exchange_strong(
              expected, op, std::memory_order_acq_rel)) {
        return &g_slots[i];
      }
      name = expected;  // lost the race; fall through to match it
    }
    if (name == op || std::strcmp(name, op) == 0) return &g_slots[i];
  }
  return nullptr;  // table full: drop the sample
}

void Record(const char* op, uint64_t nanos, bool backward) {
  OpSlot* slot = SlotFor(op);
  if (slot == nullptr) return;
  if (backward) {
    slot->backward_calls.fetch_add(1, std::memory_order_relaxed);
    slot->backward_nanos.fetch_add(nanos, std::memory_order_relaxed);
  } else {
    slot->forward_calls.fetch_add(1, std::memory_order_relaxed);
    slot->forward_nanos.fetch_add(nanos, std::memory_order_relaxed);
  }
}

}  // namespace

void SetKernelTimingEnabled(bool enabled) {
  internal::g_kernel_timing_enabled.store(enabled,
                                          std::memory_order_relaxed);
}

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void OpStart(const void* token) {
  if (!KernelTimingEnabled()) return;
  t_pending.push_back({token, NowNanos()});
}

void OpFinish(const void* token, const char* op) {
  if (t_pending.empty()) return;  // timing enabled mid-op: drop
  // Search from the top: spans close in LIFO order except when a
  // composite op finished without the engine seeing its inner tokens.
  for (size_t i = t_pending.size(); i > 0; --i) {
    if (t_pending[i - 1].token != token) continue;
    const uint64_t start = t_pending[i - 1].start_nanos;
    t_pending.erase(t_pending.begin() + static_cast<ptrdiff_t>(i - 1));
    if (KernelTimingEnabled()) Record(op, NowNanos() - start, false);
    return;
  }
}

void RecordBackward(const char* op, uint64_t nanos) {
  if (!KernelTimingEnabled()) return;
  Record(op, nanos, true);
}

std::vector<OpTimeEntry> OpTimeSnapshot() {
  std::vector<OpTimeEntry> out;
  for (size_t i = 0; i < kMaxOps; ++i) {
    const char* name = g_slots[i].name.load(std::memory_order_acquire);
    if (name == nullptr) break;
    OpTimeEntry entry;
    entry.op = name;
    entry.forward_calls =
        g_slots[i].forward_calls.load(std::memory_order_relaxed);
    entry.forward_ms =
        g_slots[i].forward_nanos.load(std::memory_order_relaxed) / 1e6;
    entry.backward_calls =
        g_slots[i].backward_calls.load(std::memory_order_relaxed);
    entry.backward_ms =
        g_slots[i].backward_nanos.load(std::memory_order_relaxed) / 1e6;
    if (entry.forward_calls == 0 && entry.backward_calls == 0) continue;
    out.push_back(std::move(entry));
  }
  std::sort(out.begin(), out.end(),
            [](const OpTimeEntry& a, const OpTimeEntry& b) {
              const double ta = a.forward_ms + a.backward_ms;
              const double tb = b.forward_ms + b.backward_ms;
              if (ta != tb) return ta > tb;
              return a.op < b.op;
            });
  return out;
}

void ResetOpTimes() {
  for (size_t i = 0; i < kMaxOps; ++i) {
    // Keep the claimed name (static string, never dangles); zero the
    // accumulators so cached slots stay valid.
    g_slots[i].forward_calls.store(0, std::memory_order_relaxed);
    g_slots[i].forward_nanos.store(0, std::memory_order_relaxed);
    g_slots[i].backward_calls.store(0, std::memory_order_relaxed);
    g_slots[i].backward_nanos.store(0, std::memory_order_relaxed);
  }
}

}  // namespace hygnn::obs
