#ifndef HYGNN_OBS_OPTIME_H_
#define HYGNN_OBS_OPTIME_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace hygnn::obs {

/// Per-operator wall-time attribution for the tensor engine, keyed by
/// the same static `TensorImpl::op` tags NumericsGuard and GraphLint
/// use. The autograd layer calls OpStart when an op's output node is
/// allocated (before the kernel runs) and OpFinish after the forward
/// value is written; Tensor::Backward wraps each node's backward_fn the
/// same way. Forward time is inclusive — a composite op that calls
/// other ops between its own start/finish includes their time.
///
/// Hot-path cost model (the part that must not perturb kernels):
///  - disabled: one relaxed atomic load per op, nothing else;
///  - enabled: two steady_clock reads plus relaxed fetch_adds into a
///    fixed lock-free slot table. No mutexes, no per-sample allocation
///    (the per-thread start stack reuses its capacity after warmup), so
///    thread-pool workers scoring pairs concurrently aggregate into the
///    same table without synchronization beyond the relaxed atomics.
/// Timing never touches tensor data: results are bit-identical with
/// timing on or off.

namespace internal {
extern std::atomic<bool> g_kernel_timing_enabled;
}  // namespace internal

/// True when per-op kernel timing is recording. One relaxed load.
inline bool KernelTimingEnabled() {
  return internal::g_kernel_timing_enabled.load(std::memory_order_relaxed);
}

/// Turns per-op timing on or off process-wide. Off is the default.
void SetKernelTimingEnabled(bool enabled);

/// Monotonic (steady_clock) timestamp in nanoseconds. The sanctioned
/// raw-clock read for callers outside src/obs that time spans feeding
/// this attribution table (e.g. Tensor::Backward) — scripts/lint.py
/// rule 10 keeps direct std::chrono clock reads out of those layers.
uint64_t NowNanos();

/// Marks the start of the op that will produce `token` (the output
/// TensorImpl address — an opaque match key). No-op when disabled.
void OpStart(const void* token);

/// Closes the span opened by OpStart(token) and attributes the elapsed
/// time to `op` (a static string tag). Unmatched finishes (timing was
/// enabled mid-op) are dropped, never misattributed.
void OpFinish(const void* token, const char* op);

/// Records `nanos` of backward time for `op` directly (Tensor::Backward
/// times each backward_fn itself — closures have no output token).
void RecordBackward(const char* op, uint64_t nanos);

/// Aggregated time of one operator, forward and backward.
struct OpTimeEntry {
  std::string op;
  uint64_t forward_calls = 0;
  double forward_ms = 0.0;
  uint64_t backward_calls = 0;
  double backward_ms = 0.0;
};

/// Snapshot of every op observed since the last ResetOpTimes, sorted by
/// descending total time.
std::vector<OpTimeEntry> OpTimeSnapshot();

void ResetOpTimes();

}  // namespace hygnn::obs

#endif  // HYGNN_OBS_OPTIME_H_
