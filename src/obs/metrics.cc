#include "obs/metrics.h"

#include <algorithm>

#include "core/logging.h"

namespace hygnn::obs {

namespace internal {
std::atomic<bool> g_metrics_enabled{false};
}  // namespace internal

namespace {

/// Portable atomic double accumulation (CAS loop; relaxed — samples are
/// independent and only aggregated at snapshot time).
void AtomicAddDouble(std::atomic<double>* target, double delta) {
  double observed = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(observed, observed + delta,
                                        std::memory_order_relaxed,
                                        std::memory_order_relaxed)) {
  }
}

}  // namespace

void SetMetricsEnabled(bool enabled) {
  internal::g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

ScopedMetricsEnabled::ScopedMetricsEnabled(bool enabled)
    : previous_(MetricsEnabled()) {
  SetMetricsEnabled(enabled);
}

ScopedMetricsEnabled::~ScopedMetricsEnabled() { SetMetricsEnabled(previous_); }

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  HYGNN_CHECK(!bounds_.empty()) << "histogram needs at least one bound";
  HYGNN_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()))
      << "histogram bounds must be ascending";
}

void Histogram::Observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const size_t bucket = static_cast<size_t>(it - bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&sum_, value);
}

double Histogram::mean() const {
  const uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Histogram::Quantile(double q) const {
  const std::vector<uint64_t> counts = BucketCounts();
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target sample (1-based, ceil so q=1 is the last one).
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(q * static_cast<double>(total) + 0.5));
  uint64_t seen = 0;
  for (size_t b = 0; b < counts.size(); ++b) {
    if (counts[b] == 0) continue;
    if (seen + counts[b] >= rank) {
      // Overflow bucket has no upper bound; report the last finite one.
      if (b == bounds_.size()) return bounds_.back();
      const double lo = b == 0 ? 0.0 : bounds_[b - 1];
      const double hi = bounds_[b];
      const double frac = static_cast<double>(rank - seen) /
                          static_cast<double>(counts[b]);
      return lo + (hi - lo) * frac;
    }
    seen += counts[b];
  }
  return bounds_.back();
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> counts(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

const std::vector<double>& DefaultLatencyBoundsUs() {
  static const std::vector<double> kBounds = {
      1,    2,    5,    10,   20,   50,   100,  200,  500,  1e3, 2e3,
      5e3,  1e4,  2e4,  5e4,  1e5,  2e5,  5e5,  1e6,  2e6,  5e6, 1e7};
  return kBounds;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  core::MutexLock lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  core::MutexLock lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  core::MutexLock lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>(
        bounds.empty() ? DefaultLatencyBoundsUs() : std::move(bounds));
  }
  return slot.get();
}

std::vector<MetricSnapshot> MetricsRegistry::Snapshot() const {
  core::MutexLock lock(mutex_);
  std::vector<MetricSnapshot> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, counter] : counters_) {
    MetricSnapshot snap;
    snap.kind = MetricSnapshot::Kind::kCounter;
    snap.name = name;
    snap.value = static_cast<double>(counter->value());
    snap.count = counter->value();
    out.push_back(std::move(snap));
  }
  for (const auto& [name, gauge] : gauges_) {
    MetricSnapshot snap;
    snap.kind = MetricSnapshot::Kind::kGauge;
    snap.name = name;
    snap.value = gauge->value();
    out.push_back(std::move(snap));
  }
  for (const auto& [name, histogram] : histograms_) {
    MetricSnapshot snap;
    snap.kind = MetricSnapshot::Kind::kHistogram;
    snap.name = name;
    snap.count = histogram->count();
    snap.sum = histogram->sum();
    snap.p50 = histogram->Quantile(0.50);
    snap.p95 = histogram->Quantile(0.95);
    snap.p99 = histogram->Quantile(0.99);
    out.push_back(std::move(snap));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.name < b.name;
            });
  return out;
}

void MetricsRegistry::ResetValues() {
  core::MutexLock lock(mutex_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace hygnn::obs
