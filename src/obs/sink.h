#ifndef HYGNN_OBS_SINK_H_
#define HYGNN_OBS_SINK_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/mutex.h"
#include "core/status.h"
#include "core/thread_annotations.h"
#include "obs/metrics.h"
#include "obs/optime.h"

namespace hygnn::obs {

/// Minimal one-object JSON line builder (no nesting — the metrics file
/// is flat records). Field order follows call order; strings are
/// escaped; numbers are emitted with enough digits to round-trip.
class JsonWriter {
 public:
  JsonWriter& Str(std::string_view key, std::string_view value);
  JsonWriter& Num(std::string_view key, double value);
  JsonWriter& Int(std::string_view key, int64_t value);
  JsonWriter& Uint(std::string_view key, uint64_t value);

  /// The finished object, e.g. {"type":"epoch","epoch":3}.
  std::string Finish();

 private:
  void Key(std::string_view key);
  std::string body_;
};

/// Buffers JSONL metric events during a run and flushes them — together
/// with a MetricsRegistry snapshot and the per-op kernel times — as one
/// atomic, checksummed file. All I/O goes through core::ActiveFileSystem,
/// so FaultInjectingFs covers the metrics path like every other writer:
/// the flush is temp + fsync + rename, and the file ends with the same
/// "#crc32,<hex>" trailer the CSV corpus files carry, letting readers
/// reject torn or corrupt copies.
///
/// Line inventory (one JSON object per line, discriminated by "type"):
///   {"type":"event", ...}                       — caller-recorded events
///   {"type":"counter","name":...,"value":...}
///   {"type":"gauge","name":...,"value":...}
///   {"type":"histogram","name":...,"count":...,"sum":...,
///    "p50":...,"p95":...,"p99":...}             — microsecond latencies
///   {"type":"op","name":...,"forward_calls":...,"forward_ms":...,
///    "backward_calls":...,"backward_ms":...}    — kernel op attribution
///
/// Thread-safety: Event and Flush may race (concurrent workers sharing
/// one recorder); the event buffer is mutex-guarded and annotated, so
/// the discipline is checked by clang's -Wthread-safety.
class MetricsRecorder {
 public:
  /// `path` is where Flush writes; an empty path makes the recorder
  /// inert (Event is a no-op, Flush succeeds without touching disk), so
  /// callers can construct one unconditionally and gate nothing.
  explicit MetricsRecorder(std::string path);

  bool active() const { return !path_.empty(); }
  const std::string& path() const { return path_; }

  /// Appends one pre-built JSON object (use JsonWriter) as an event
  /// line. Buffered in memory until Flush.
  void Event(std::string json_object) HYGNN_EXCLUDES(mutex_);

  /// Writes events + registry snapshot + op times to path() atomically
  /// with a CRC trailer. Safe to call repeatedly (later flushes rewrite
  /// the file with the fuller picture).
  core::Status Flush() const HYGNN_EXCLUDES(mutex_);

 private:
  std::string path_;
  mutable core::Mutex mutex_;
  std::vector<std::string> events_ HYGNN_GUARDED_BY(mutex_);
};

/// Reads a Flush()ed metrics file through `ActiveFileSystem`, verifies
/// the "#crc32" trailer, and returns the JSONL body (trailer stripped).
/// Torn, truncated, or corrupt files are typed IoErrors.
core::Result<std::string> ReadMetricsFileVerified(const std::string& path);

/// Splits a verified JSONL body into lines (no blank lines). Helper for
/// tests and downstream tooling.
std::vector<std::string> SplitJsonlLines(std::string_view body);

}  // namespace hygnn::obs

#endif  // HYGNN_OBS_SINK_H_
