#ifndef HYGNN_OBS_METRICS_H_
#define HYGNN_OBS_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/mutex.h"
#include "core/thread_annotations.h"

namespace hygnn::obs {

/// Lightweight process-wide observability: named counters, gauges, and
/// fixed-bucket latency histograms, plus scoped timers for
/// instrumenting hot paths. Everything here is *passive* — recording a
/// metric never changes numerical results, and every instrumentation
/// site is gated on MetricsEnabled() so a run with metrics off pays
/// exactly one relaxed atomic load per site.
///
/// Thread-safety: metric handles returned by MetricsRegistry are stable
/// for the registry's lifetime and all mutators use relaxed atomics, so
/// kernel worker threads (core::ParallelFor) can record into shared
/// metrics without locks on the hot path. Registration (GetCounter /
/// GetGauge / GetHistogram) takes a mutex — do it once at setup, not
/// per-sample. The registry maps are HYGNN_GUARDED_BY-annotated, so
/// clang's -Wthread-safety proves every access holds the lock.

namespace internal {
extern std::atomic<bool> g_metrics_enabled;
}  // namespace internal

/// True when the process is recording metrics. One relaxed load; this
/// is the gate every instrumentation site checks first.
inline bool MetricsEnabled() {
  return internal::g_metrics_enabled.load(std::memory_order_relaxed);
}

/// Turns metric recording on or off process-wide. Off is the default.
void SetMetricsEnabled(bool enabled);

/// RAII enable/restore of MetricsEnabled for a scope (the trainer uses
/// this so a metrics-instrumented Fit leaves the process as it found it).
class ScopedMetricsEnabled {
 public:
  explicit ScopedMetricsEnabled(bool enabled);
  ~ScopedMetricsEnabled();

  ScopedMetricsEnabled(const ScopedMetricsEnabled&) = delete;
  ScopedMetricsEnabled& operator=(const ScopedMetricsEnabled&) = delete;

 private:
  bool previous_;
};

/// Monotonically increasing event count. Add is a relaxed fetch_add;
/// overflow wraps modulo 2^64 (well-defined, tested).
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins scalar (e.g. "current learning rate", "final loss").
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram for latencies (or any non-negative value).
/// Buckets are defined by ascending upper bounds; values above the last
/// bound land in an implicit overflow bucket. Observe is lock-free
/// (binary search + one relaxed fetch_add per sample); quantiles are
/// estimated by linear interpolation inside the containing bucket, so
/// p50/p95/p99 are exact to bucket resolution.
class Histogram {
 public:
  /// `bounds` must be non-empty and strictly ascending.
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const;

  /// Estimated value at quantile `q` in [0, 1]; 0 when empty. Values in
  /// the overflow bucket report the last finite bound.
  double Quantile(double q) const;

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts (bounds().size() + 1 entries; last = overflow).
  std::vector<uint64_t> BucketCounts() const;

  void Reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Default latency bucket bounds in microseconds: 1us .. 10s on a
/// 1-2-5 grid. Shared by every latency histogram so files are
/// comparable across subsystems.
const std::vector<double>& DefaultLatencyBoundsUs();

/// Point-in-time copy of one metric, for serialization.
struct MetricSnapshot {
  enum class Kind { kCounter, kGauge, kHistogram };
  Kind kind = Kind::kCounter;
  std::string name;
  // Counter / gauge value.
  double value = 0.0;
  // Histogram-only fields.
  uint64_t count = 0;
  double sum = 0.0;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
};

/// Process-wide registry of named metrics. Handles are created on first
/// use and live until process exit, so instrumentation sites can cache
/// the pointer. Names are dotted paths ("train.epoch_us",
/// "serve.embedding_cache.hits") — see DESIGN.md §10 for the inventory.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// Empty `bounds` means DefaultLatencyBoundsUs(). Bounds are fixed at
  /// first registration; later calls ignore the argument.
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> bounds = {});

  /// Point-in-time copy of every registered metric, sorted by name.
  std::vector<MetricSnapshot> Snapshot() const;

  /// Zeroes every registered metric's value (registrations survive, so
  /// cached handles stay valid). Test isolation helper.
  void ResetValues();

 private:
  MetricsRegistry() = default;

  mutable core::Mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      HYGNN_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      HYGNN_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      HYGNN_GUARDED_BY(mutex_);
};

/// Wall-clock timer over std::chrono::steady_clock. The obs-sanctioned
/// way to time hot paths in src/hygnn and src/serve (scripts/lint.py
/// forbids ad-hoc core::Stopwatch use there).
class Timer {
 public:
  Timer() : start_(Clock::now()) {}
  void Reset() { start_ = Clock::now(); }
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// RAII latency sample: records elapsed microseconds into `histogram`
/// on destruction. Captures MetricsEnabled() at construction — when
/// metrics are off the constructor is one relaxed load and the
/// destructor a branch; no clock is read.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram)
      : histogram_(MetricsEnabled() ? histogram : nullptr) {}
  ~ScopedTimer() {
    if (histogram_ != nullptr) histogram_->Observe(timer_.ElapsedMicros());
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* histogram_;
  Timer timer_;
};

}  // namespace hygnn::obs

#endif  // HYGNN_OBS_METRICS_H_
