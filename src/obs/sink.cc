#include "obs/sink.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/fs.h"

namespace hygnn::obs {

using core::Result;
using core::Status;

namespace {

constexpr char kCrcTrailerPrefix[] = "#crc32,";

std::string EscapeJson(std::string_view raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  for (char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string FormatDouble(double value) {
  if (!std::isfinite(value)) return "null";  // JSON has no NaN/Inf
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

}  // namespace

void JsonWriter::Key(std::string_view key) {
  body_ += body_.empty() ? '{' : ',';
  body_ += '"';
  body_ += EscapeJson(key);
  body_ += "\":";
}

JsonWriter& JsonWriter::Str(std::string_view key, std::string_view value) {
  Key(key);
  body_ += '"';
  body_ += EscapeJson(value);
  body_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Num(std::string_view key, double value) {
  Key(key);
  body_ += FormatDouble(value);
  return *this;
}

JsonWriter& JsonWriter::Int(std::string_view key, int64_t value) {
  Key(key);
  body_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Uint(std::string_view key, uint64_t value) {
  Key(key);
  body_ += std::to_string(value);
  return *this;
}

std::string JsonWriter::Finish() {
  if (body_.empty()) return "{}";
  std::string out = std::move(body_);
  body_.clear();
  out += '}';
  return out;
}

MetricsRecorder::MetricsRecorder(std::string path)
    : path_(std::move(path)) {}

void MetricsRecorder::Event(std::string json_object) {
  if (!active()) return;
  core::MutexLock lock(mutex_);
  events_.push_back(std::move(json_object));
}

Status MetricsRecorder::Flush() const {
  if (!active()) return Status::Ok();
  std::string body;
  {
    core::MutexLock lock(mutex_);
    for (const auto& event : events_) {
      body += event;
      body += '\n';
    }
  }
  for (const auto& snap : MetricsRegistry::Global().Snapshot()) {
    JsonWriter line;
    switch (snap.kind) {
      case MetricSnapshot::Kind::kCounter:
        line.Str("type", "counter").Str("name", snap.name).Uint(
            "value", snap.count);
        break;
      case MetricSnapshot::Kind::kGauge:
        line.Str("type", "gauge").Str("name", snap.name).Num("value",
                                                             snap.value);
        break;
      case MetricSnapshot::Kind::kHistogram:
        line.Str("type", "histogram")
            .Str("name", snap.name)
            .Uint("count", snap.count)
            .Num("sum", snap.sum)
            .Num("p50", snap.p50)
            .Num("p95", snap.p95)
            .Num("p99", snap.p99);
        break;
    }
    body += line.Finish();
    body += '\n';
  }
  for (const auto& op : OpTimeSnapshot()) {
    JsonWriter line;
    line.Str("type", "op")
        .Str("name", op.op)
        .Uint("forward_calls", op.forward_calls)
        .Num("forward_ms", op.forward_ms)
        .Uint("backward_calls", op.backward_calls)
        .Num("backward_ms", op.backward_ms);
    body += line.Finish();
    body += '\n';
  }
  char trailer[24];
  std::snprintf(trailer, sizeof(trailer), "%s%08x\n", kCrcTrailerPrefix,
                core::Crc32(body));
  body += trailer;
  return core::WriteFileAtomic(core::ActiveFileSystem(), path_, body);
}

Result<std::string> ReadMetricsFileVerified(const std::string& path) {
  auto content_or = core::ActiveFileSystem().ReadFile(path);
  if (!content_or.ok()) return content_or.status();
  const std::string& content = content_or.value();
  const size_t pos = content.rfind(kCrcTrailerPrefix);
  if (pos == std::string::npos || (pos != 0 && content[pos - 1] != '\n')) {
    return Status::IoError(
        "missing #crc32 trailer (torn or foreign metrics file): " + path);
  }
  std::string hex = content.substr(pos + sizeof(kCrcTrailerPrefix) - 1);
  while (!hex.empty() && (hex.back() == '\n' || hex.back() == '\r')) {
    hex.pop_back();
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long stored = std::strtoul(hex.c_str(), &end, 16);
  if (errno != 0 || hex.size() != 8 || end != hex.c_str() + hex.size()) {
    return Status::IoError("malformed #crc32 trailer: " + path);
  }
  std::string body = content.substr(0, pos);
  const uint32_t computed = core::Crc32(body);
  if (computed != static_cast<uint32_t>(stored)) {
    return Status::IoError(
        "metrics file checksum mismatch (torn or corrupt write): " + path);
  }
  return body;
}

std::vector<std::string> SplitJsonlLines(std::string_view body) {
  std::vector<std::string> lines;
  size_t begin = 0;
  while (begin < body.size()) {
    size_t end = body.find('\n', begin);
    if (end == std::string_view::npos) end = body.size();
    if (end > begin) lines.emplace_back(body.substr(begin, end - begin));
    begin = end + 1;
  }
  return lines;
}

}  // namespace hygnn::obs
