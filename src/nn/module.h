#ifndef HYGNN_NN_MODULE_H_
#define HYGNN_NN_MODULE_H_

#include <vector>

#include "tensor/tensor.h"

namespace hygnn::nn {

/// Base class for parameterized layers/models. Parameters() exposes the
/// trainable tensors for optimizer construction.
class Module {
 public:
  virtual ~Module() = default;

  /// The trainable parameters of this module (and its children).
  virtual std::vector<tensor::Tensor> Parameters() const = 0;
};

/// Concatenates the parameter lists of several modules.
std::vector<tensor::Tensor> CollectParameters(
    const std::vector<const Module*>& modules);

}  // namespace hygnn::nn

#endif  // HYGNN_NN_MODULE_H_
