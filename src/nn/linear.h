#ifndef HYGNN_NN_LINEAR_H_
#define HYGNN_NN_LINEAR_H_

#include "core/rng.h"
#include "nn/module.h"
#include "tensor/tensor.h"

namespace hygnn::nn {

/// Affine layer y = x W + b with Xavier-initialized W ([in, out]).
class Linear : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, bool use_bias,
         core::Rng* rng);

  /// x is [n, in]; returns [n, out].
  tensor::Tensor Forward(const tensor::Tensor& x) const;

  std::vector<tensor::Tensor> Parameters() const override;

  const tensor::Tensor& weight() const { return weight_; }

 private:
  tensor::Tensor weight_;
  tensor::Tensor bias_;  // undefined when bias disabled
};

}  // namespace hygnn::nn

#endif  // HYGNN_NN_LINEAR_H_
