#include "nn/linear.h"

#include "tensor/init.h"
#include "tensor/ops.h"

namespace hygnn::nn {

Linear::Linear(int64_t in_features, int64_t out_features, bool use_bias,
               core::Rng* rng)
    : weight_(tensor::XavierUniform(in_features, out_features, rng)) {
  if (use_bias) {
    bias_ = tensor::Tensor::Zeros(1, out_features, /*requires_grad=*/true);
  }
}

tensor::Tensor Linear::Forward(const tensor::Tensor& x) const {
  tensor::Tensor out = tensor::MatMul(x, weight_);
  if (bias_.defined()) out = tensor::AddRowBroadcast(out, bias_);
  return out;
}

std::vector<tensor::Tensor> Linear::Parameters() const {
  if (bias_.defined()) return {weight_, bias_};
  return {weight_};
}

}  // namespace hygnn::nn
