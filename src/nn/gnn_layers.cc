#include "nn/gnn_layers.h"

#include "core/logging.h"
#include "tensor/init.h"
#include "tensor/ops.h"

namespace hygnn::nn {

GcnConv::GcnConv(int64_t in_features, int64_t out_features, core::Rng* rng)
    : linear_(in_features, out_features, /*use_bias=*/true, rng) {}

tensor::Tensor GcnConv::Forward(
    const std::shared_ptr<const tensor::CsrMatrix>& adj,
    const tensor::Tensor& x) const {
  return linear_.Forward(tensor::SpMM(adj, x));
}

std::vector<tensor::Tensor> GcnConv::Parameters() const {
  return linear_.Parameters();
}

SageConv::SageConv(int64_t in_features, int64_t out_features, core::Rng* rng)
    : linear_(2 * in_features, out_features, /*use_bias=*/true, rng) {}

tensor::Tensor SageConv::Forward(
    const std::shared_ptr<const tensor::CsrMatrix>& mean_adj,
    const tensor::Tensor& x) const {
  tensor::Tensor neighborhood = tensor::SpMM(mean_adj, x);
  return linear_.Forward(tensor::ConcatCols(x, neighborhood));
}

std::vector<tensor::Tensor> SageConv::Parameters() const {
  return linear_.Parameters();
}

GatEdgeIndex GatEdgeIndex::FromGraph(const graph::Graph& graph) {
  GatEdgeIndex index;
  index.num_nodes = graph.num_nodes();
  graph.DirectedEdges(&index.sources, &index.targets);
  for (int32_t v = 0; v < graph.num_nodes(); ++v) {
    index.sources.push_back(v);
    index.targets.push_back(v);
  }
  return index;
}

GatConv::GatConv(int64_t in_features, int64_t head_features,
                 int32_t num_heads, core::Rng* rng, float negative_slope)
    : negative_slope_(negative_slope) {
  HYGNN_CHECK_GT(num_heads, 0);
  for (int32_t h = 0; h < num_heads; ++h) {
    Head head;
    head.weight = tensor::XavierUniform(in_features, head_features, rng);
    head.attn_src = tensor::XavierUniform(head_features, 1, rng);
    head.attn_tgt = tensor::XavierUniform(head_features, 1, rng);
    heads_.push_back(std::move(head));
  }
}

tensor::Tensor GatConv::Forward(const GatEdgeIndex& edges,
                                const tensor::Tensor& x) const {
  HYGNN_CHECK_EQ(x.rows(), edges.num_nodes);
  tensor::Tensor output;
  for (const Head& head : heads_) {
    tensor::Tensor h = tensor::MatMul(x, head.weight);  // [n, f]
    tensor::Tensor score_src = tensor::MatMul(h, head.attn_src);  // [n, 1]
    tensor::Tensor score_tgt = tensor::MatMul(h, head.attn_tgt);  // [n, 1]
    tensor::Tensor edge_scores = tensor::LeakyRelu(
        tensor::Add(tensor::IndexSelectRows(score_src, edges.sources),
                    tensor::IndexSelectRows(score_tgt, edges.targets)),
        negative_slope_);
    tensor::Tensor alpha = tensor::SegmentSoftmax(
        edge_scores, edges.targets, edges.num_nodes);
    tensor::Tensor messages = tensor::IndexSelectRows(h, edges.sources);
    tensor::Tensor aggregated = tensor::SegmentSum(
        tensor::MulColumnBroadcast(messages, alpha), edges.targets,
        edges.num_nodes);
    output = output.defined() ? tensor::ConcatCols(output, aggregated)
                              : aggregated;
  }
  return output;
}

std::vector<tensor::Tensor> GatConv::Parameters() const {
  std::vector<tensor::Tensor> parameters;
  for (const Head& head : heads_) {
    parameters.push_back(head.weight);
    parameters.push_back(head.attn_src);
    parameters.push_back(head.attn_tgt);
  }
  return parameters;
}

}  // namespace hygnn::nn
