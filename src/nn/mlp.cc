#include "nn/mlp.h"

#include "core/logging.h"
#include "tensor/ops.h"

namespace hygnn::nn {

Mlp::Mlp(const std::vector<int64_t>& dims, core::Rng* rng, float dropout)
    : dropout_(dropout) {
  HYGNN_CHECK_GE(dims.size(), 2u);
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.push_back(std::make_unique<Linear>(dims[i], dims[i + 1],
                                               /*use_bias=*/true, rng));
  }
}

tensor::Tensor Mlp::Forward(const tensor::Tensor& x, bool training,
                            core::Rng* rng) const {
  tensor::Tensor h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i]->Forward(h);
    if (i + 1 < layers_.size()) {
      h = tensor::Relu(h);
      if (dropout_ > 0.0f) {
        h = tensor::Dropout(h, dropout_, training, rng);
      }
    }
  }
  return h;
}

tensor::Tensor Mlp::Forward(const tensor::Tensor& x) const {
  return Forward(x, /*training=*/false, nullptr);
}

std::vector<tensor::Tensor> Mlp::Parameters() const {
  std::vector<tensor::Tensor> parameters;
  for (const auto& layer : layers_) {
    auto params = layer->Parameters();
    parameters.insert(parameters.end(), params.begin(), params.end());
  }
  return parameters;
}

}  // namespace hygnn::nn
