#ifndef HYGNN_NN_MLP_H_
#define HYGNN_NN_MLP_H_

#include <memory>
#include <vector>

#include "core/rng.h"
#include "nn/linear.h"
#include "nn/module.h"

namespace hygnn::nn {

/// Multi-layer perceptron with ReLU activations between layers (the
/// paper's decoder/classifier activation) and a linear final layer.
class Mlp : public Module {
 public:
  /// `dims` = {in, hidden..., out}; must have >= 2 entries.
  Mlp(const std::vector<int64_t>& dims, core::Rng* rng,
      float dropout = 0.0f);

  /// Forward pass; dropout is active only when `training`.
  tensor::Tensor Forward(const tensor::Tensor& x, bool training,
                         core::Rng* rng) const;

  /// Inference-mode forward (no dropout).
  tensor::Tensor Forward(const tensor::Tensor& x) const;

  std::vector<tensor::Tensor> Parameters() const override;

 private:
  std::vector<std::unique_ptr<Linear>> layers_;
  float dropout_;
};

}  // namespace hygnn::nn

#endif  // HYGNN_NN_MLP_H_
