#ifndef HYGNN_NN_GNN_LAYERS_H_
#define HYGNN_NN_GNN_LAYERS_H_

#include <memory>
#include <vector>

#include "core/rng.h"
#include "graph/graph.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "tensor/sparse.h"
#include "tensor/tensor.h"

namespace hygnn::nn {

/// Graph convolution layer (Kipf & Welling): H' = Â H W + b with
/// Â = D^-1/2 (A+I) D^-1/2 precomputed from the graph.
class GcnConv : public Module {
 public:
  GcnConv(int64_t in_features, int64_t out_features, core::Rng* rng);

  /// `adj` must be the graph's NormalizedAdjacency().
  tensor::Tensor Forward(
      const std::shared_ptr<const tensor::CsrMatrix>& adj,
      const tensor::Tensor& x) const;

  std::vector<tensor::Tensor> Parameters() const override;

 private:
  Linear linear_;
};

/// GraphSAGE layer with the mean aggregator:
/// H' = concat(H, D^-1 A H) W + b.
class SageConv : public Module {
 public:
  SageConv(int64_t in_features, int64_t out_features, core::Rng* rng);

  /// `mean_adj` must be the graph's MeanAdjacency().
  tensor::Tensor Forward(
      const std::shared_ptr<const tensor::CsrMatrix>& mean_adj,
      const tensor::Tensor& x) const;

  std::vector<tensor::Tensor> Parameters() const override;

 private:
  Linear linear_;  // input dim = 2 * in_features
};

/// Precomputed directed edge structure (with self-loops) for GAT.
struct GatEdgeIndex {
  std::vector<int32_t> sources;
  std::vector<int32_t> targets;
  int32_t num_nodes = 0;

  /// Builds from an undirected graph, adding one self-loop per node.
  static GatEdgeIndex FromGraph(const graph::Graph& graph);
};

/// Graph attention layer (Velickovic et al.), multi-head with
/// concatenated heads. Attention logits use the standard split form
/// e_ij = LeakyReLU(a_src . Wh_i + a_tgt . Wh_j), softmax over each
/// target's incoming edges.
class GatConv : public Module {
 public:
  /// Output dimension is num_heads * head_features.
  GatConv(int64_t in_features, int64_t head_features, int32_t num_heads,
          core::Rng* rng, float negative_slope = 0.2f);

  tensor::Tensor Forward(const GatEdgeIndex& edges,
                         const tensor::Tensor& x) const;

  std::vector<tensor::Tensor> Parameters() const override;

 private:
  struct Head {
    tensor::Tensor weight;   // [in, head_features]
    tensor::Tensor attn_src; // [head_features, 1]
    tensor::Tensor attn_tgt; // [head_features, 1]
  };
  std::vector<Head> heads_;
  float negative_slope_;
};

}  // namespace hygnn::nn

#endif  // HYGNN_NN_GNN_LAYERS_H_
