#include "nn/module.h"

namespace hygnn::nn {

std::vector<tensor::Tensor> CollectParameters(
    const std::vector<const Module*>& modules) {
  std::vector<tensor::Tensor> parameters;
  for (const Module* module : modules) {
    auto params = module->Parameters();
    parameters.insert(parameters.end(), params.begin(), params.end());
  }
  return parameters;
}

}  // namespace hygnn::nn
