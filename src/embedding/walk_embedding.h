#ifndef HYGNN_EMBEDDING_WALK_EMBEDDING_H_
#define HYGNN_EMBEDDING_WALK_EMBEDDING_H_

#include <cstdint>
#include <vector>

#include "core/rng.h"
#include "embedding/sgns.h"
#include "graph/graph.h"
#include "graph/random_walk.h"

namespace hygnn::embedding {

/// Combined walk + SGNS configuration. Paper settings for both
/// baselines: walk_length 100, num_walks 10, window 5.
struct WalkEmbeddingConfig {
  graph::RandomWalkConfig walk;
  SgnsConfig sgns;
};

/// DeepWalk (Perozzi et al.): uniform random walks + skip-gram.
/// Returns one embedding row per node ([num_nodes][dimension]).
std::vector<std::vector<float>> DeepWalkEmbeddings(
    const graph::Graph& graph, const WalkEmbeddingConfig& config,
    core::Rng* rng);

/// node2vec (Grover & Leskovec): p,q-biased walks + skip-gram. The p
/// and q parameters come from config.walk.
std::vector<std::vector<float>> Node2VecEmbeddings(
    const graph::Graph& graph, const WalkEmbeddingConfig& config,
    core::Rng* rng);

}  // namespace hygnn::embedding

#endif  // HYGNN_EMBEDDING_WALK_EMBEDDING_H_
