#include "embedding/sgns.h"

#include <cmath>

#include "core/logging.h"

namespace hygnn::embedding {

namespace {
constexpr size_t kNoiseTableSize = 1 << 18;

float FastSigmoid(float x) {
  if (x > 8.0f) return 1.0f;
  if (x < -8.0f) return 0.0f;
  return 1.0f / (1.0f + std::exp(-x));
}
}  // namespace

SgnsModel::SgnsModel(int32_t vocab_size, const SgnsConfig& config,
                     core::Rng* rng)
    : vocab_size_(vocab_size), config_(config) {
  HYGNN_CHECK_GT(vocab_size, 0);
  HYGNN_CHECK(rng != nullptr);
  const float scale = 0.5f / static_cast<float>(config_.dimension);
  in_embeddings_.assign(static_cast<size_t>(vocab_size),
                        std::vector<float>(config_.dimension, 0.0f));
  out_embeddings_.assign(static_cast<size_t>(vocab_size),
                         std::vector<float>(config_.dimension, 0.0f));
  for (auto& row : in_embeddings_) {
    for (auto& v : row) {
      v = (rng->UniformFloat() - 0.5f) * 2.0f * scale;
    }
  }
}

void SgnsModel::BuildNoiseTable(
    const std::vector<std::vector<int32_t>>& walks) {
  std::vector<double> counts(static_cast<size_t>(vocab_size_), 0.0);
  for (const auto& walk : walks) {
    for (int32_t node : walk) {
      HYGNN_CHECK(node >= 0 && node < vocab_size_);
      counts[static_cast<size_t>(node)] += 1.0;
    }
  }
  double total = 0.0;
  for (auto& c : counts) {
    c = std::pow(c, config_.noise_exponent);
    total += c;
  }
  noise_table_.clear();
  noise_table_.reserve(kNoiseTableSize);
  if (total <= 0.0) {
    for (size_t i = 0; i < kNoiseTableSize; ++i) {
      noise_table_.push_back(static_cast<int32_t>(i % vocab_size_));
    }
    return;
  }
  for (int32_t node = 0; node < vocab_size_; ++node) {
    const size_t slots = static_cast<size_t>(
        counts[static_cast<size_t>(node)] / total * kNoiseTableSize);
    for (size_t s = 0; s < slots; ++s) noise_table_.push_back(node);
  }
  while (noise_table_.size() < kNoiseTableSize) {
    noise_table_.push_back(static_cast<int32_t>(
        noise_table_.size() % static_cast<size_t>(vocab_size_)));
  }
}

void SgnsModel::UpdatePair(int32_t center, int32_t context, float lr,
                           core::Rng* rng) {
  const int64_t d = config_.dimension;
  auto& v_in = in_embeddings_[static_cast<size_t>(center)];
  std::vector<float> grad_in(static_cast<size_t>(d), 0.0f);

  // Positive sample target 1, negatives target 0 (shared loop).
  for (int32_t s = 0; s < config_.negative_samples + 1; ++s) {
    int32_t target_node;
    float label;
    if (s == 0) {
      target_node = context;
      label = 1.0f;
    } else {
      target_node = noise_table_[rng->UniformInt(noise_table_.size())];
      if (target_node == context) continue;
      label = 0.0f;
    }
    auto& v_out = out_embeddings_[static_cast<size_t>(target_node)];
    float dot = 0.0f;
    for (int64_t i = 0; i < d; ++i) dot += v_in[i] * v_out[i];
    const float gradient = (FastSigmoid(dot) - label) * lr;
    for (int64_t i = 0; i < d; ++i) {
      grad_in[i] += gradient * v_out[i];
      v_out[i] -= gradient * v_in[i];
    }
  }
  for (int64_t i = 0; i < d; ++i) v_in[i] -= grad_in[i];
}

void SgnsModel::Train(const std::vector<std::vector<int32_t>>& walks,
                      core::Rng* rng) {
  HYGNN_CHECK(rng != nullptr);
  BuildNoiseTable(walks);
  int64_t total_tokens = 0;
  for (const auto& walk : walks) {
    total_tokens += static_cast<int64_t>(walk.size());
  }
  const int64_t total_steps =
      std::max<int64_t>(1, total_tokens * config_.epochs);
  int64_t step = 0;
  for (int32_t epoch = 0; epoch < config_.epochs; ++epoch) {
    for (const auto& walk : walks) {
      for (size_t center = 0; center < walk.size(); ++center) {
        const float progress =
            static_cast<float>(step) / static_cast<float>(total_steps);
        const float lr = std::max(config_.learning_rate * (1.0f - progress),
                                  config_.learning_rate * 1e-2f);
        const size_t window_begin =
            center >= static_cast<size_t>(config_.window_size)
                ? center - config_.window_size
                : 0;
        const size_t window_end =
            std::min(walk.size() - 1, center + config_.window_size);
        for (size_t ctx = window_begin; ctx <= window_end; ++ctx) {
          if (ctx == center) continue;
          UpdatePair(walk[center], walk[ctx], lr, rng);
        }
        ++step;
      }
    }
  }
}

const std::vector<float>& SgnsModel::Embedding(int32_t node) const {
  HYGNN_CHECK(node >= 0 && node < vocab_size_);
  return in_embeddings_[static_cast<size_t>(node)];
}

}  // namespace hygnn::embedding
