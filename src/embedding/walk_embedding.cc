#include "embedding/walk_embedding.h"

namespace hygnn::embedding {

namespace {

std::vector<std::vector<float>> TrainOnWalks(
    int32_t num_nodes, const std::vector<std::vector<int32_t>>& walks,
    const SgnsConfig& sgns_config, core::Rng* rng) {
  SgnsModel model(num_nodes, sgns_config, rng);
  model.Train(walks, rng);
  std::vector<std::vector<float>> embeddings;
  embeddings.reserve(static_cast<size_t>(num_nodes));
  for (int32_t v = 0; v < num_nodes; ++v) {
    embeddings.push_back(model.Embedding(v));
  }
  return embeddings;
}

}  // namespace

std::vector<std::vector<float>> DeepWalkEmbeddings(
    const graph::Graph& graph, const WalkEmbeddingConfig& config,
    core::Rng* rng) {
  auto walks = graph::UniformRandomWalks(graph, config.walk, rng);
  return TrainOnWalks(graph.num_nodes(), walks, config.sgns, rng);
}

std::vector<std::vector<float>> Node2VecEmbeddings(
    const graph::Graph& graph, const WalkEmbeddingConfig& config,
    core::Rng* rng) {
  auto walks = graph::BiasedRandomWalks(graph, config.walk, rng);
  return TrainOnWalks(graph.num_nodes(), walks, config.sgns, rng);
}

}  // namespace hygnn::embedding
