#ifndef HYGNN_EMBEDDING_SGNS_H_
#define HYGNN_EMBEDDING_SGNS_H_

#include <cstdint>
#include <vector>

#include "core/rng.h"

namespace hygnn::embedding {

/// Skip-gram with negative sampling (word2vec) hyperparameters. The
/// paper's random-walk baselines use window_size = 5.
struct SgnsConfig {
  int64_t dimension = 64;
  int32_t window_size = 5;
  int32_t negative_samples = 5;
  int32_t epochs = 3;
  float learning_rate = 0.025f;
  /// Unigram distribution smoothing exponent (word2vec's 0.75).
  double noise_exponent = 0.75;
};

/// Trains SGNS over a corpus of walks (sequences of node ids) and
/// exposes the learned input embeddings. This is the shared training
/// core of the DeepWalk and node2vec baselines.
class SgnsModel {
 public:
  SgnsModel(int32_t vocab_size, const SgnsConfig& config, core::Rng* rng);

  /// Runs `config.epochs` passes over the walk corpus with linearly
  /// decaying learning rate.
  void Train(const std::vector<std::vector<int32_t>>& walks,
             core::Rng* rng);

  /// The input embedding of a node.
  const std::vector<float>& Embedding(int32_t node) const;

  int64_t dimension() const { return config_.dimension; }
  int32_t vocab_size() const { return vocab_size_; }

 private:
  /// One positive (center, context) update plus negative samples.
  void UpdatePair(int32_t center, int32_t context, float lr,
                  core::Rng* rng);

  void BuildNoiseTable(const std::vector<std::vector<int32_t>>& walks);

  int32_t vocab_size_;
  SgnsConfig config_;
  std::vector<std::vector<float>> in_embeddings_;
  std::vector<std::vector<float>> out_embeddings_;
  std::vector<int32_t> noise_table_;
};

}  // namespace hygnn::embedding

#endif  // HYGNN_EMBEDDING_SGNS_H_
