#ifndef HYGNN_CHEM_KMER_H_
#define HYGNN_CHEM_KMER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/status.h"

namespace hygnn::chem {

/// Extracts all character-level k-mers of a SMILES string, in order.
/// For a sequence of length l there are l-k+1 k-mers (paper §III-B:
/// "NCCO" with k=2 -> {NC, CC, CO}). Strings shorter than k yield the
/// whole string as a single unit so no drug decomposes to nothing.
core::Result<std::vector<std::string>> ExtractKmers(const std::string& smiles,
                                                    int64_t k);

/// Distinct k-mers of `smiles`, preserving first-occurrence order.
core::Result<std::vector<std::string>> ExtractUniqueKmers(
    const std::string& smiles, int64_t k);

}  // namespace hygnn::chem

#endif  // HYGNN_CHEM_KMER_H_
