#include "chem/smiles.h"

#include <cctype>
#include <set>
#include <unordered_map>

namespace hygnn::chem {

namespace {

using core::Result;
using core::Status;

/// Two-character organic/common element symbols recognized outside
/// brackets.
bool IsTwoCharElement(char a, char b) {
  return (a == 'C' && b == 'l') || (a == 'B' && b == 'r');
}

/// Single-character aliphatic organic-subset atoms.
bool IsAliphaticAtom(char c) {
  switch (c) {
    case 'B':
    case 'C':
    case 'N':
    case 'O':
    case 'P':
    case 'S':
    case 'F':
    case 'I':
      return true;
    default:
      return false;
  }
}

/// Single-character aromatic organic-subset atoms.
bool IsAromaticAtom(char c) {
  switch (c) {
    case 'b':
    case 'c':
    case 'n':
    case 'o':
    case 'p':
    case 's':
      return true;
    default:
      return false;
  }
}

bool IsBondChar(char c) {
  switch (c) {
    case '-':
    case '=':
    case '#':
    case ':':
    case '/':
    case '\\':
      return true;
    default:
      return false;
  }
}

}  // namespace

Result<std::vector<SmilesToken>> TokenizeSmiles(const std::string& smiles) {
  std::vector<SmilesToken> tokens;
  const size_t n = smiles.size();
  if (n == 0) {
    return Status::InvalidArgument("empty SMILES string");
  }
  size_t i = 0;
  while (i < n) {
    const char c = smiles[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      return Status::InvalidArgument("whitespace inside SMILES at position " +
                                     std::to_string(i));
    }
    if (c == '[') {
      size_t close = smiles.find(']', i);
      if (close == std::string::npos) {
        return Status::InvalidArgument("unterminated bracket atom at " +
                                       std::to_string(i));
      }
      if (close == i + 1) {
        return Status::InvalidArgument("empty bracket atom at " +
                                       std::to_string(i));
      }
      tokens.push_back({SmilesTokenType::kBracketAtom,
                        smiles.substr(i, close - i + 1)});
      i = close + 1;
      continue;
    }
    if (c == ']') {
      return Status::InvalidArgument("unmatched ']' at " + std::to_string(i));
    }
    if (i + 1 < n && IsTwoCharElement(c, smiles[i + 1])) {
      tokens.push_back({SmilesTokenType::kAtom, smiles.substr(i, 2)});
      i += 2;
      continue;
    }
    if (IsAliphaticAtom(c) || IsAromaticAtom(c)) {
      tokens.push_back({SmilesTokenType::kAtom, std::string(1, c)});
      ++i;
      continue;
    }
    if (IsBondChar(c)) {
      tokens.push_back({SmilesTokenType::kBond, std::string(1, c)});
      ++i;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      tokens.push_back({SmilesTokenType::kRingBond, std::string(1, c)});
      ++i;
      continue;
    }
    if (c == '%') {
      if (i + 2 >= n || !std::isdigit(static_cast<unsigned char>(smiles[i + 1])) ||
          !std::isdigit(static_cast<unsigned char>(smiles[i + 2]))) {
        return Status::InvalidArgument("malformed %nn ring closure at " +
                                       std::to_string(i));
      }
      tokens.push_back({SmilesTokenType::kRingBond, smiles.substr(i, 3)});
      i += 3;
      continue;
    }
    if (c == '(') {
      tokens.push_back({SmilesTokenType::kBranchOpen, "("});
      ++i;
      continue;
    }
    if (c == ')') {
      tokens.push_back({SmilesTokenType::kBranchClose, ")"});
      ++i;
      continue;
    }
    if (c == '.') {
      tokens.push_back({SmilesTokenType::kDot, "."});
      ++i;
      continue;
    }
    return Status::InvalidArgument(std::string("invalid SMILES character '") +
                                   c + "' at " + std::to_string(i));
  }
  return tokens;
}

Status ValidateSmiles(const std::string& smiles) {
  auto tokens_or = TokenizeSmiles(smiles);
  if (!tokens_or.ok()) return tokens_or.status();
  const auto& tokens = tokens_or.value();

  int paren_depth = 0;
  // Ring closures must appear an even number of times per label within
  // each connected component (labels can be reused after closing).
  std::unordered_map<std::string, int> open_rings;
  bool prev_was_bond = false;
  bool seen_atom = false;

  for (size_t i = 0; i < tokens.size(); ++i) {
    const auto& t = tokens[i];
    switch (t.type) {
      case SmilesTokenType::kBranchOpen:
        if (!seen_atom) {
          return Status::InvalidArgument("branch before any atom");
        }
        ++paren_depth;
        if (i + 1 < tokens.size() &&
            tokens[i + 1].type == SmilesTokenType::kBranchClose) {
          return Status::InvalidArgument("empty branch '()'");
        }
        break;
      case SmilesTokenType::kBranchClose:
        --paren_depth;
        if (paren_depth < 0) {
          return Status::InvalidArgument("unmatched ')'");
        }
        if (prev_was_bond) {
          return Status::InvalidArgument("bond before ')'");
        }
        break;
      case SmilesTokenType::kBond:
        if (!seen_atom) {
          return Status::InvalidArgument("SMILES begins with a bond");
        }
        if (prev_was_bond) {
          return Status::InvalidArgument("two consecutive bond symbols");
        }
        break;
      case SmilesTokenType::kRingBond:
        if (!seen_atom) {
          return Status::InvalidArgument("ring closure before any atom");
        }
        open_rings[t.text] ^= 1;
        break;
      case SmilesTokenType::kAtom:
      case SmilesTokenType::kBracketAtom:
        seen_atom = true;
        break;
      case SmilesTokenType::kDot:
        if (prev_was_bond || paren_depth != 0) {
          return Status::InvalidArgument("misplaced '.'");
        }
        break;
    }
    prev_was_bond = t.type == SmilesTokenType::kBond;
  }
  if (paren_depth != 0) return Status::InvalidArgument("unbalanced '('");
  if (prev_was_bond) return Status::InvalidArgument("trailing bond symbol");
  if (!seen_atom) return Status::InvalidArgument("no atoms in SMILES");
  for (const auto& [label, parity] : open_rings) {
    if (parity != 0) {
      return Status::InvalidArgument("unclosed ring bond '" + label + "'");
    }
  }
  return Status::Ok();
}

Result<std::string> NormalizeSmiles(const std::string& smiles) {
  // Strip whitespace first (inputs from CSV may carry padding).
  std::string stripped;
  stripped.reserve(smiles.size());
  for (char c : smiles) {
    if (!std::isspace(static_cast<unsigned char>(c))) stripped.push_back(c);
  }
  Status valid = ValidateSmiles(stripped);
  if (!valid.ok()) return valid;
  auto tokens = TokenizeSmiles(stripped).value();
  // Drop redundant explicit single bonds between atoms/rings; '-' is the
  // default bond and canonical forms omit it.
  std::string out;
  for (const auto& t : tokens) {
    if (t.type == SmilesTokenType::kBond && t.text == "-") continue;
    out += t.text;
  }
  return out;
}

std::vector<std::string> TokenTexts(const std::vector<SmilesToken>& tokens) {
  std::vector<std::string> texts;
  texts.reserve(tokens.size());
  for (const auto& t : tokens) texts.push_back(t.text);
  return texts;
}

}  // namespace hygnn::chem
