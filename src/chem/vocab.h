#ifndef HYGNN_CHEM_VOCAB_H_
#define HYGNN_CHEM_VOCAB_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace hygnn::chem {

/// Bidirectional mapping between substructure strings and dense integer
/// ids, with occurrence counts. Hypergraph nodes are vocabulary entries.
class SubstructureVocabulary {
 public:
  /// Returns the id for `substructure`, inserting it if new.
  int32_t AddOrGet(const std::string& substructure);

  /// Returns the id, or -1 when absent.
  int32_t Find(const std::string& substructure) const;

  /// Increments the occurrence count of an existing entry.
  void CountOccurrence(int32_t id, int64_t delta = 1);

  const std::string& Text(int32_t id) const;
  int64_t Frequency(int32_t id) const;

  int32_t size() const { return static_cast<int32_t>(texts_.size()); }

  /// Ids sorted by descending frequency (ties broken by id).
  std::vector<int32_t> IdsByFrequency() const;

 private:
  std::unordered_map<std::string, int32_t> index_;
  std::vector<std::string> texts_;
  std::vector<int64_t> counts_;
};

}  // namespace hygnn::chem

#endif  // HYGNN_CHEM_VOCAB_H_
