#ifndef HYGNN_CHEM_FINGERPRINT_H_
#define HYGNN_CHEM_FINGERPRINT_H_

#include <cstdint>
#include <string>

#include "chem/molgraph.h"
#include "core/status.h"
#include "ml/bitvector.h"

namespace hygnn::chem {

/// Morgan / ECFP-style circular fingerprint parameters. ECFP4
/// corresponds to radius = 2.
struct FingerprintConfig {
  int32_t radius = 2;
  int32_t num_bits = 1024;
};

/// Computes a Morgan (extended-connectivity) fingerprint of a molecular
/// graph: each atom starts from an invariant of (element, aromaticity,
/// charge, degree); `radius` rounds of neighborhood hashing generate
/// circular-substructure identifiers which are folded into a fixed-size
/// bit vector. This is the "molecular fingerprint" of Vilar et al.'s
/// similarity-based DDI baseline (paper §II).
ml::BitVector MorganFingerprint(const MolecularGraph& molecule,
                                const FingerprintConfig& config = {});

/// Convenience: parse + fingerprint in one call.
core::Result<ml::BitVector> MorganFingerprintFromSmiles(
    const std::string& smiles, const FingerprintConfig& config = {});

/// Tanimoto similarity |a&b| / |a|b| of two fingerprints (equals
/// BitVector::Jaccard; named per the cheminformatics convention).
double TanimotoSimilarity(const ml::BitVector& a, const ml::BitVector& b);

}  // namespace hygnn::chem

#endif  // HYGNN_CHEM_FINGERPRINT_H_
