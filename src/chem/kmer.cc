#include "chem/kmer.h"

#include <unordered_set>

namespace hygnn::chem {

using core::Result;
using core::Status;

Result<std::vector<std::string>> ExtractKmers(const std::string& smiles,
                                              int64_t k) {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  if (smiles.empty()) return Status::InvalidArgument("empty SMILES string");
  std::vector<std::string> kmers;
  const int64_t l = static_cast<int64_t>(smiles.size());
  if (l < k) {
    kmers.push_back(smiles);
    return kmers;
  }
  kmers.reserve(static_cast<size_t>(l - k + 1));
  for (int64_t i = 0; i + k <= l; ++i) {
    kmers.push_back(smiles.substr(static_cast<size_t>(i),
                                  static_cast<size_t>(k)));
  }
  return kmers;
}

Result<std::vector<std::string>> ExtractUniqueKmers(const std::string& smiles,
                                                    int64_t k) {
  auto kmers_or = ExtractKmers(smiles, k);
  if (!kmers_or.ok()) return kmers_or.status();
  std::vector<std::string> unique;
  std::unordered_set<std::string> seen;
  for (auto& kmer : kmers_or.value()) {
    if (seen.insert(kmer).second) unique.push_back(kmer);
  }
  return unique;
}

}  // namespace hygnn::chem
