#ifndef HYGNN_CHEM_STROBEMER_H_
#define HYGNN_CHEM_STROBEMER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/status.h"

namespace hygnn::chem {

/// Parameters for randstrobe extraction (Sahlin 2021, cited by the
/// paper in §III-B as an alternative to k-mers). A randstrobe of order
/// 2 couples a fixed k-mer ("strobe 1") at position i with a second
/// k-mer chosen inside a downstream window by hash minimization — a
/// gap-tolerant substructure that still matches across insertions.
struct StrobemerConfig {
  int64_t k = 4;       // strobe length
  int64_t w_min = 2;   // window start offset (from end of strobe 1)
  int64_t w_max = 8;   // window end offset
  uint64_t hash_seed = 0x9e3779b97f4a7c15ULL;
};

/// Extracts order-2 randstrobes from a SMILES string: one strobemer per
/// anchor position while a full window fits, formatted as
/// "<strobe1>~<strobe2>". Strings shorter than one full strobemer span
/// yield the whole string (so no drug decomposes to nothing).
core::Result<std::vector<std::string>> ExtractRandstrobes(
    const std::string& smiles, const StrobemerConfig& config);

/// Distinct randstrobes, first-occurrence order.
core::Result<std::vector<std::string>> ExtractUniqueRandstrobes(
    const std::string& smiles, const StrobemerConfig& config);

}  // namespace hygnn::chem

#endif  // HYGNN_CHEM_STROBEMER_H_
