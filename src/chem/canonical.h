#ifndef HYGNN_CHEM_CANONICAL_H_
#define HYGNN_CHEM_CANONICAL_H_

#include <string>
#include <vector>

#include "chem/molgraph.h"
#include "core/status.h"

namespace hygnn::chem {

/// Produces a canonical SMILES string: two SMILES spellings of the same
/// molecular graph map to the same output. This is the role PubChem
/// canonicalization plays in the paper's pipeline (§IV-A: "we
/// canonicalized each of the SMILES").
///
/// Canonical atom ranks come from Morgan-style iterative refinement of
/// (element, aromaticity, charge, degree) invariants with deterministic
/// tie-breaking; the writer emits a rank-ordered DFS with ring-closure
/// digits for the non-tree bonds. Stereochemistry and isotopes are not
/// preserved (they are parsed and dropped, as in the rest of the
/// library).
core::Result<std::string> CanonicalSmiles(const std::string& smiles);

/// Canonical ranks (a permutation of [0, num_atoms)) of a parsed
/// molecule; exposed for testing and for callers that need a canonical
/// atom order without re-serializing.
std::vector<int32_t> CanonicalRanks(const MolecularGraph& molecule);

}  // namespace hygnn::chem

#endif  // HYGNN_CHEM_CANONICAL_H_
