#include "chem/generator.h"

#include "chem/smiles.h"
#include "core/logging.h"

namespace hygnn::chem {

using core::Result;
using core::Status;

SmilesGenerator::SmilesGenerator(std::vector<Fragment> library)
    : library_(library.empty() ? StandardFragmentLibrary()
                               : std::move(library)) {
  for (size_t i = 0; i < library_.size(); ++i) {
    if (library_[i].reactive_class < 0) {
      filler_indices_.push_back(static_cast<int32_t>(i));
    }
  }
  HYGNN_CHECK(!filler_indices_.empty());
}

Result<std::string> SmilesGenerator::Generate(
    const std::vector<int32_t>& fragment_indices, int32_t filler_count,
    core::Rng* rng) const {
  HYGNN_CHECK(rng != nullptr);
  for (int32_t idx : fragment_indices) {
    if (idx < 0 || idx >= static_cast<int32_t>(library_.size())) {
      return Status::InvalidArgument("fragment index out of range: " +
                                     std::to_string(idx));
    }
  }
  // Collect the pieces: requested groups + random filler, shuffled.
  std::vector<int32_t> pieces = fragment_indices;
  for (int32_t i = 0; i < filler_count; ++i) {
    pieces.push_back(
        filler_indices_[rng->UniformInt(filler_indices_.size())]);
  }
  rng->Shuffle(pieces);

  // The chain always opens with a plain carbon so that the first branch
  // or bond has an atom to attach to.
  std::string smiles = "C";
  for (int32_t idx : pieces) {
    const Fragment& fragment = library_[static_cast<size_t>(idx)];
    if (fragment.terminal_only) {
      // Terminal fragments would leave a dangling chain if placed
      // inline, so attach them as a branch off the current chain end.
      smiles += "(" + fragment.smiles + ")";
    } else if (rng->Bernoulli(0.3)) {
      // Occasionally attach non-terminal groups as branches too, for
      // structural variety.
      smiles += "(" + fragment.smiles + ")";
    } else {
      smiles += fragment.smiles;
    }
  }
  Status valid = ValidateSmiles(smiles);
  if (!valid.ok()) {
    return Status::Internal("generator produced invalid SMILES '" + smiles +
                            "': " + valid.message());
  }
  return smiles;
}

}  // namespace hygnn::chem
