#include "chem/espf.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "chem/smiles.h"
#include "core/logging.h"

namespace hygnn::chem {

namespace {

using core::Result;
using core::Status;

using PairKey = std::pair<std::string, std::string>;

struct PairKeyHash {
  size_t operator()(const PairKey& p) const {
    std::hash<std::string> h;
    return h(p.first) * 1315423911u ^ h(p.second);
  }
};

/// Counts adjacent pairs across the whole corpus.
std::unordered_map<PairKey, int64_t, PairKeyHash> CountPairs(
    const std::vector<std::vector<std::string>>& corpus) {
  std::unordered_map<PairKey, int64_t, PairKeyHash> counts;
  for (const auto& seq : corpus) {
    for (size_t i = 0; i + 1 < seq.size(); ++i) {
      counts[{seq[i], seq[i + 1]}]++;
    }
  }
  return counts;
}

/// Merges every occurrence of (left, right) in `seq` in-place semantics
/// (returns the merged sequence).
std::vector<std::string> MergePairInSequence(
    const std::vector<std::string>& seq, const std::string& left,
    const std::string& right) {
  std::vector<std::string> out;
  out.reserve(seq.size());
  size_t i = 0;
  while (i < seq.size()) {
    if (i + 1 < seq.size() && seq[i] == left && seq[i + 1] == right) {
      out.push_back(left + right);
      i += 2;
    } else {
      out.push_back(seq[i]);
      ++i;
    }
  }
  return out;
}

}  // namespace

Result<Espf> Espf::Train(const std::vector<std::string>& corpus,
                         const EspfConfig& config) {
  if (corpus.empty()) {
    return Status::InvalidArgument("ESPF training corpus is empty");
  }
  if (config.frequency_threshold < 1) {
    return Status::InvalidArgument("frequency_threshold must be >= 1");
  }
  std::vector<std::vector<std::string>> sequences;
  sequences.reserve(corpus.size());
  for (const auto& smiles : corpus) {
    auto tokens_or = TokenizeSmiles(smiles);
    if (!tokens_or.ok()) return tokens_or.status();
    sequences.push_back(TokenTexts(tokens_or.value()));
  }

  Espf model;
  for (int64_t iter = 0; iter < config.max_merges; ++iter) {
    auto counts = CountPairs(sequences);
    PairKey best;
    int64_t best_count = 0;
    for (const auto& [key, count] : counts) {
      if (count > best_count ||
          (count == best_count && best_count > 0 && key < best)) {
        best = key;
        best_count = count;
      }
    }
    if (best_count < config.frequency_threshold) break;
    model.merges_.push_back({best.first, best.second});
    for (auto& seq : sequences) {
      seq = MergePairInSequence(seq, best.first, best.second);
    }
  }

  // Vocabulary: unique units of the fully merged training corpus, most
  // to least frequent (the paper's list F).
  std::unordered_map<std::string, int64_t> unit_counts;
  for (const auto& seq : sequences) {
    for (const auto& unit : seq) unit_counts[unit]++;
  }
  std::vector<std::pair<std::string, int64_t>> sorted(unit_counts.begin(),
                                                      unit_counts.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  model.vocabulary_.reserve(sorted.size());
  for (const auto& [unit, count] : sorted) {
    model.vocabulary_.push_back(unit);
  }
  return model;
}

std::vector<std::string> Espf::ApplyMerges(
    std::vector<std::string> units) const {
  // Replay merges in learned order. Each pass is linear; total cost is
  // merges * length, fine for SMILES-sized strings.
  for (const auto& merge : merges_) {
    if (units.size() < 2) break;
    units = MergePairInSequence(units, merge.left, merge.right);
  }
  return units;
}

Result<std::vector<std::string>> Espf::Segment(
    const std::string& smiles) const {
  auto tokens_or = TokenizeSmiles(smiles);
  if (!tokens_or.ok()) return tokens_or.status();
  return ApplyMerges(TokenTexts(tokens_or.value()));
}

}  // namespace hygnn::chem
