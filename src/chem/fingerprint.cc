#include "chem/fingerprint.h"

#include <algorithm>
#include <functional>
#include <vector>

#include "core/logging.h"

namespace hygnn::chem {

namespace {

uint64_t MixHash(uint64_t h, uint64_t value) {
  h ^= value + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

uint64_t InitialInvariant(const MolecularGraph& molecule, int32_t atom) {
  const Atom& a = molecule.atom(atom);
  uint64_t h = 1469598103934665603ULL;
  for (char c : a.element) h = MixHash(h, static_cast<uint64_t>(c));
  h = MixHash(h, a.aromatic ? 1 : 0);
  h = MixHash(h, static_cast<uint64_t>(a.charge + 16));
  h = MixHash(h, static_cast<uint64_t>(molecule.Degree(atom)));
  return h;
}

}  // namespace

ml::BitVector MorganFingerprint(const MolecularGraph& molecule,
                                const FingerprintConfig& config) {
  HYGNN_CHECK_GT(config.num_bits, 0);
  HYGNN_CHECK_GE(config.radius, 0);
  ml::BitVector bits(config.num_bits);
  if (molecule.num_atoms() == 0) return bits;

  std::vector<uint64_t> invariants(
      static_cast<size_t>(molecule.num_atoms()));
  for (int32_t atom = 0; atom < molecule.num_atoms(); ++atom) {
    invariants[static_cast<size_t>(atom)] =
        InitialInvariant(molecule, atom);
    bits.SetBit(static_cast<int32_t>(invariants[static_cast<size_t>(atom)] %
                                     static_cast<uint64_t>(config.num_bits)));
  }

  for (int32_t round = 0; round < config.radius; ++round) {
    std::vector<uint64_t> next(invariants.size());
    for (int32_t atom = 0; atom < molecule.num_atoms(); ++atom) {
      // Collect (bond order, neighbor invariant) pairs; sort for
      // neighbor-order invariance.
      std::vector<std::pair<uint64_t, uint64_t>> neighborhood;
      for (int32_t bond_index : molecule.IncidentBonds(atom)) {
        const Bond& bond = molecule.bond(bond_index);
        const int32_t other = molecule.OtherEnd(bond_index, atom);
        const uint64_t order_key =
            bond.aromatic ? 4 : static_cast<uint64_t>(bond.order);
        neighborhood.emplace_back(order_key,
                                  invariants[static_cast<size_t>(other)]);
      }
      std::sort(neighborhood.begin(), neighborhood.end());
      uint64_t h = MixHash(0x2545F4914F6CDD1DULL,
                           invariants[static_cast<size_t>(atom)]);
      h = MixHash(h, static_cast<uint64_t>(round + 1));
      for (const auto& [order, inv] : neighborhood) {
        h = MixHash(h, order);
        h = MixHash(h, inv);
      }
      next[static_cast<size_t>(atom)] = h;
      bits.SetBit(static_cast<int32_t>(
          h % static_cast<uint64_t>(config.num_bits)));
    }
    invariants = std::move(next);
  }
  return bits;
}

core::Result<ml::BitVector> MorganFingerprintFromSmiles(
    const std::string& smiles, const FingerprintConfig& config) {
  auto molecule_or = MolecularGraph::FromSmiles(smiles);
  if (!molecule_or.ok()) return molecule_or.status();
  return MorganFingerprint(molecule_or.value(), config);
}

double TanimotoSimilarity(const ml::BitVector& a, const ml::BitVector& b) {
  return a.Jaccard(b);
}

}  // namespace hygnn::chem
