#include "chem/molgraph.h"

#include <cctype>
#include <unordered_map>

#include "chem/smiles.h"
#include "core/logging.h"

namespace hygnn::chem {

using core::Result;
using core::Status;

namespace {

/// Parses the contents of a bracket atom expression (without the
/// enclosing []) into an Atom. Grammar (subset of Daylight):
///   [isotope] symbol [chirality] [Hcount] [charge]
Result<Atom> ParseBracketAtom(const std::string& body) {
  Atom atom;
  size_t i = 0;
  // isotope digits (ignored)
  while (i < body.size() && std::isdigit(static_cast<unsigned char>(body[i]))) {
    ++i;
  }
  if (i >= body.size()) {
    return Status::InvalidArgument("bracket atom missing element: [" +
                                   body + "]");
  }
  // element symbol: uppercase + optional lowercase, or aromatic
  // lowercase (c, n, o, s, p, se, as)
  if (std::isupper(static_cast<unsigned char>(body[i]))) {
    atom.element = body[i++];
    if (i < body.size() && std::islower(static_cast<unsigned char>(body[i])) &&
        body[i] != 'h') {
      // Two-letter element, but do not swallow a following H-count 'h'.
      // (Real SMILES H-count is uppercase 'H'; this guard is for safety.)
      atom.element += body[i++];
    }
  } else if (std::islower(static_cast<unsigned char>(body[i]))) {
    atom.aromatic = true;
    atom.element = static_cast<char>(
        std::toupper(static_cast<unsigned char>(body[i])));
    ++i;
    if (i < body.size() && body[i] == 'e') {  // se
      atom.element += 'e';
      ++i;
    }
  } else {
    return Status::InvalidArgument("bad bracket atom: [" + body + "]");
  }
  // chirality (@ or @@) — parsed and ignored
  while (i < body.size() && body[i] == '@') ++i;
  // explicit hydrogen count
  if (i < body.size() && body[i] == 'H') {
    ++i;
    atom.explicit_hydrogens = 1;
    if (i < body.size() && std::isdigit(static_cast<unsigned char>(body[i]))) {
      atom.explicit_hydrogens = body[i] - '0';
      ++i;
    }
  }
  // charge: +, -, ++, --, +2, -3 ...
  if (i < body.size() && (body[i] == '+' || body[i] == '-')) {
    const int32_t sign = body[i] == '+' ? 1 : -1;
    int32_t magnitude = 0;
    while (i < body.size() && (body[i] == '+' || body[i] == '-')) {
      if ((body[i] == '+' ? 1 : -1) != sign) {
        return Status::InvalidArgument("mixed charge signs: [" + body + "]");
      }
      ++magnitude;
      ++i;
    }
    if (i < body.size() && std::isdigit(static_cast<unsigned char>(body[i]))) {
      magnitude = 0;
      while (i < body.size() &&
             std::isdigit(static_cast<unsigned char>(body[i]))) {
        magnitude = magnitude * 10 + (body[i] - '0');
        ++i;
      }
    }
    atom.charge = sign * magnitude;
  }
  if (i != body.size()) {
    return Status::InvalidArgument("trailing garbage in bracket atom: [" +
                                   body + "]");
  }
  return atom;
}

int32_t BondOrderOf(const std::string& symbol) {
  if (symbol == "=") return 2;
  if (symbol == "#") return 3;
  return 1;  // '-', ':', '/', '\\' treated as single for graph purposes
}

}  // namespace

Result<MolecularGraph> MolecularGraph::FromSmiles(const std::string& smiles) {
  Status valid = ValidateSmiles(smiles);
  if (!valid.ok()) return valid;
  auto tokens = TokenizeSmiles(smiles).value();

  MolecularGraph graph;
  std::vector<int32_t> branch_stack;
  int32_t previous_atom = -1;
  int32_t pending_order = 0;  // 0 = default (single or aromatic)
  // ring label -> (atom index, bond order at open)
  std::unordered_map<std::string, std::pair<int32_t, int32_t>> open_rings;

  auto add_bond = [&graph](int32_t a, int32_t b, int32_t order,
                           bool aromatic_hint) {
    Bond bond;
    bond.a = a;
    bond.b = b;
    bond.order = order == 0 ? 1 : order;
    bond.aromatic = aromatic_hint && order == 0 &&
                    graph.atoms_[static_cast<size_t>(a)].aromatic &&
                    graph.atoms_[static_cast<size_t>(b)].aromatic;
    graph.bonds_.push_back(bond);
  };

  for (const auto& token : tokens) {
    switch (token.type) {
      case SmilesTokenType::kAtom:
      case SmilesTokenType::kBracketAtom: {
        Atom atom;
        if (token.type == SmilesTokenType::kAtom) {
          if (std::islower(static_cast<unsigned char>(token.text[0]))) {
            atom.aromatic = true;
            atom.element = static_cast<char>(
                std::toupper(static_cast<unsigned char>(token.text[0])));
            if (token.text.size() > 1) atom.element += token.text[1];
          } else {
            atom.element = token.text;
          }
        } else {
          auto atom_or = ParseBracketAtom(
              token.text.substr(1, token.text.size() - 2));
          if (!atom_or.ok()) return atom_or.status();
          atom = std::move(atom_or).value();
        }
        const int32_t index = graph.num_atoms();
        graph.atoms_.push_back(std::move(atom));
        if (previous_atom >= 0) {
          add_bond(previous_atom, index, pending_order, true);
        }
        previous_atom = index;
        pending_order = 0;
        break;
      }
      case SmilesTokenType::kBond:
        pending_order = BondOrderOf(token.text);
        break;
      case SmilesTokenType::kRingBond: {
        HYGNN_CHECK_GE(previous_atom, 0);
        auto it = open_rings.find(token.text);
        if (it == open_rings.end()) {
          open_rings.emplace(token.text,
                             std::make_pair(previous_atom, pending_order));
        } else {
          const auto [other_atom, open_order] = it->second;
          open_rings.erase(it);
          const int32_t order =
              pending_order != 0 ? pending_order : open_order;
          add_bond(other_atom, previous_atom, order, true);
        }
        pending_order = 0;
        break;
      }
      case SmilesTokenType::kBranchOpen:
        branch_stack.push_back(previous_atom);
        break;
      case SmilesTokenType::kBranchClose:
        previous_atom = branch_stack.back();
        branch_stack.pop_back();
        break;
      case SmilesTokenType::kDot:
        previous_atom = -1;
        pending_order = 0;
        break;
    }
  }
  graph.BuildIncidence();
  return graph;
}

void MolecularGraph::BuildIncidence() {
  incidence_offsets_.assign(atoms_.size() + 1, 0);
  for (const auto& bond : bonds_) {
    incidence_offsets_[static_cast<size_t>(bond.a) + 1]++;
    incidence_offsets_[static_cast<size_t>(bond.b) + 1]++;
  }
  for (size_t i = 1; i < incidence_offsets_.size(); ++i) {
    incidence_offsets_[i] += incidence_offsets_[i - 1];
  }
  incidence_.resize(static_cast<size_t>(incidence_offsets_.back()));
  std::vector<int64_t> cursor(incidence_offsets_.begin(),
                              incidence_offsets_.end() - 1);
  for (int32_t bond_index = 0; bond_index < num_bonds(); ++bond_index) {
    const auto& bond = bonds_[static_cast<size_t>(bond_index)];
    incidence_[static_cast<size_t>(cursor[static_cast<size_t>(bond.a)]++)] =
        bond_index;
    incidence_[static_cast<size_t>(cursor[static_cast<size_t>(bond.b)]++)] =
        bond_index;
  }
}

std::span<const int32_t> MolecularGraph::IncidentBonds(int32_t atom) const {
  HYGNN_CHECK(atom >= 0 && atom < num_atoms());
  const int64_t begin = incidence_offsets_[static_cast<size_t>(atom)];
  const int64_t end = incidence_offsets_[static_cast<size_t>(atom) + 1];
  return {incidence_.data() + begin, static_cast<size_t>(end - begin)};
}

int64_t MolecularGraph::Degree(int32_t atom) const {
  HYGNN_CHECK(atom >= 0 && atom < num_atoms());
  return incidence_offsets_[static_cast<size_t>(atom) + 1] -
         incidence_offsets_[static_cast<size_t>(atom)];
}

int32_t MolecularGraph::OtherEnd(int32_t bond_index, int32_t atom) const {
  const auto& bond = bonds_[static_cast<size_t>(bond_index)];
  return bond.a == atom ? bond.b : bond.a;
}

}  // namespace hygnn::chem
