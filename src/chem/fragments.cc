#include "chem/fragments.h"

namespace hygnn::chem {

namespace {

std::vector<Fragment> BuildLibrary() {
  // reactive_class groups fragments into chemical families; the data
  // generator's latent rule interacts *classes*, so two different
  // fragments of the same class are interchangeable evidence — this is
  // what lets substructure-based models generalize across drugs that
  // carry different members of the same family. The class space is kept
  // deliberately wide (~19 classes) so that topology-only models cannot
  // trivially enumerate class profiles from a handful of edges.
  return {
      // --- reactive functional groups ---
      {"carboxyl", "C(=O)O", 0, false},
      {"ester", "C(=O)OC", 0, false},
      {"ethyl_ester", "C(=O)OCC", 0, false},
      {"amide", "C(=O)N", 1, false},
      {"amine", "N(C)C", 1, false},
      {"guanidine", "NC(N)=N", 1, false},
      {"dimethylamide", "C(=O)N(C)C", 1, false},
      {"phenyl", "c1ccccc1", 2, false},
      {"pyridine", "c1ccncc1", 2, false},
      {"imidazole", "c1cnc[nH]1", 2, false},
      {"furan", "c1ccoc1", 3, false},
      {"thiophene", "c1ccsc1", 3, false},
      {"pyrrole", "c1cc[nH]c1", 3, false},
      {"sulfonamide", "S(=O)(=O)N", 4, false},
      {"sulfonyl", "S(=O)(=O)C", 4, false},
      {"sulfonic_acid", "S(=O)(=O)O", 4, true},
      {"nitro", "[N+](=O)[O-]", 5, true},
      {"nitrile", "C#N", 5, true},
      {"trifluoromethyl", "C(F)(F)F", 6, true},
      {"chloro", "Cl", 6, true},
      {"bromo", "Br", 6, true},
      {"fluoro", "F", 6, true},
      {"iodo", "I", 6, true},
      {"phosphate", "OP(=O)(O)O", 7, true},
      {"phosphonate", "P(=O)(O)O", 7, true},
      {"ketone", "C(=O)C", 8, false},
      {"alkene", "C=C", 8, false},
      {"alkyne", "C#C", 8, false},
      {"cyclohexyl", "C1CCCCC1", 9, false},
      {"piperidine", "N1CCCCC1", 9, false},
      {"morpholine", "N1CCOCC1", 9, false},
      {"piperazine_like", "C1CCNCC1", 9, false},
      {"oxolane", "C1CCOC1", 9, false},
      {"hydroxyl", "O", 10, true},
      {"thioether", "SC", 11, false},
      {"thiol", "S", 11, true},
      {"urea", "NC(=O)N", 12, false},
      {"carbamate", "OC(=O)N", 12, false},
      {"cresyl", "c1ccc(C)cc1", 13, false},
      {"phenol", "c1ccc(O)cc1", 13, false},
      {"aniline", "c1ccc(N)cc1", 13, false},
      {"spiro_ether", "C1COC2(CCCCC2)O1", 14, false},
      {"spiro_carbocycle", "C1CCC2(CCCC2)CC1", 14, false},
      {"amidine", "C(=N)N", 15, false},
      {"azide", "N=[N+]=[N-]", 16, true},
      {"benzonitrile", "c1ccc(C#N)cc1", 17, false},
      {"benzamide", "c1ccc(C(=O)N)cc1", 17, false},
      {"acetal", "C(OC)OC", 18, false},
      {"methylenedioxy", "C1OC2(O1)CCCC2", 18, false},
      // --- inert fillers ---
      {"methyl", "C", -1, false},
      {"ethyl", "CC", -1, false},
      {"propyl", "CCC", -1, false},
      {"butyl", "CCCC", -1, false},
      {"methoxy", "CO", -1, false},
      {"aminomethyl", "CN", -1, false},
      {"isopropyl", "C(C)C", -1, false},
      {"ethanol_tail", "CCO", -1, false},
      {"oxyethyl", "OCC", -1, false},
      {"tert_butyl", "C(C)(C)C", -1, false},
  };
}

}  // namespace

const std::vector<Fragment>& StandardFragmentLibrary() {
  static const auto& library = *new std::vector<Fragment>(BuildLibrary());
  return library;
}

std::vector<int32_t> FunctionalGroupIndices() {
  std::vector<int32_t> indices;
  const auto& lib = StandardFragmentLibrary();
  for (size_t i = 0; i < lib.size(); ++i) {
    if (lib[i].reactive_class >= 0) {
      indices.push_back(static_cast<int32_t>(i));
    }
  }
  return indices;
}

std::vector<int32_t> FillerIndices() {
  std::vector<int32_t> indices;
  const auto& lib = StandardFragmentLibrary();
  for (size_t i = 0; i < lib.size(); ++i) {
    if (lib[i].reactive_class < 0) {
      indices.push_back(static_cast<int32_t>(i));
    }
  }
  return indices;
}

int32_t NumReactiveClasses() {
  int32_t max_class = -1;
  for (const auto& fragment : StandardFragmentLibrary()) {
    max_class = std::max(max_class, fragment.reactive_class);
  }
  return max_class + 1;
}

}  // namespace hygnn::chem
