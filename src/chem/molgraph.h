#ifndef HYGNN_CHEM_MOLGRAPH_H_
#define HYGNN_CHEM_MOLGRAPH_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/status.h"

namespace hygnn::chem {

/// An atom of a parsed molecule.
struct Atom {
  std::string element;  // "C", "N", "Cl", ... (capitalized)
  bool aromatic = false;
  int32_t charge = 0;
  int32_t explicit_hydrogens = -1;  // -1 = unspecified
};

/// A bond between two atoms (indices into the atom list).
struct Bond {
  int32_t a = 0;
  int32_t b = 0;
  int32_t order = 1;      // 1, 2, 3
  bool aromatic = false;  // aromatic ring bond
};

/// A molecular graph parsed from a SMILES string: atoms, bonds, and
/// per-atom adjacency. This is the structure fingerprinting operates
/// on (the paper's related work builds molecular graphs from SMILES,
/// e.g. Vilar et al.'s fingerprint similarity and Chen et al.'s
/// molecular-graph representation learning).
class MolecularGraph {
 public:
  /// Parses a SMILES string into atoms and bonds. Handles the organic
  /// subset, aromatic atoms, bracket atoms ([NH4+], [O-], [C@@H], ...),
  /// branches, ring closures (digits and %nn), explicit bond orders,
  /// and dot-separated components. Chirality and isotopes are parsed
  /// but ignored. Fails with InvalidArgument on malformed input.
  static core::Result<MolecularGraph> FromSmiles(const std::string& smiles);

  int32_t num_atoms() const { return static_cast<int32_t>(atoms_.size()); }
  int32_t num_bonds() const { return static_cast<int32_t>(bonds_.size()); }

  const Atom& atom(int32_t index) const { return atoms_[index]; }
  const Bond& bond(int32_t index) const { return bonds_[index]; }
  const std::vector<Atom>& atoms() const { return atoms_; }
  const std::vector<Bond>& bonds() const { return bonds_; }

  /// Bond indices incident to `atom`.
  std::span<const int32_t> IncidentBonds(int32_t atom) const;

  /// Degree (number of explicit bonds) of `atom`.
  int64_t Degree(int32_t atom) const;

  /// The atom on the other end of `bond_index` from `atom`.
  int32_t OtherEnd(int32_t bond_index, int32_t atom) const;

 private:
  friend class SmilesParser;
  std::vector<Atom> atoms_;
  std::vector<Bond> bonds_;
  std::vector<int64_t> incidence_offsets_;
  std::vector<int32_t> incidence_;

  void BuildIncidence();
};

}  // namespace hygnn::chem

#endif  // HYGNN_CHEM_MOLGRAPH_H_
