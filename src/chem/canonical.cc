#include "chem/canonical.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <unordered_map>

#include "chem/smiles.h"
#include "core/logging.h"

namespace hygnn::chem {

using core::Result;
using core::Status;

namespace {

uint64_t MixHash(uint64_t h, uint64_t value) {
  h ^= value + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

/// Converts arbitrary invariant values into dense ranks [0, k).
std::vector<int32_t> Densify(const std::vector<uint64_t>& invariants) {
  std::vector<uint64_t> sorted = invariants;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  std::unordered_map<uint64_t, int32_t> rank_of;
  for (size_t r = 0; r < sorted.size(); ++r) {
    rank_of[sorted[r]] = static_cast<int32_t>(r);
  }
  std::vector<int32_t> ranks(invariants.size());
  for (size_t i = 0; i < invariants.size(); ++i) {
    ranks[i] = rank_of[invariants[i]];
  }
  return ranks;
}

int32_t DistinctCount(const std::vector<int32_t>& ranks) {
  std::vector<int32_t> sorted = ranks;
  std::sort(sorted.begin(), sorted.end());
  return static_cast<int32_t>(
      std::unique(sorted.begin(), sorted.end()) - sorted.begin());
}

/// One Morgan refinement sweep: rank + sorted (bond, neighbor rank).
std::vector<int32_t> Refine(const MolecularGraph& molecule,
                            const std::vector<int32_t>& ranks) {
  std::vector<uint64_t> invariants(ranks.size());
  for (int32_t atom = 0; atom < molecule.num_atoms(); ++atom) {
    std::vector<std::pair<uint64_t, uint64_t>> neighborhood;
    for (int32_t bond_index : molecule.IncidentBonds(atom)) {
      const Bond& bond = molecule.bond(bond_index);
      const uint64_t bond_key =
          bond.aromatic ? 4 : static_cast<uint64_t>(bond.order);
      neighborhood.emplace_back(
          bond_key, static_cast<uint64_t>(
                        ranks[static_cast<size_t>(
                            molecule.OtherEnd(bond_index, atom))]));
    }
    std::sort(neighborhood.begin(), neighborhood.end());
    uint64_t h = MixHash(0x6a09e667f3bcc909ULL,
                         static_cast<uint64_t>(ranks[atom]));
    for (const auto& [bond_key, neighbor_rank] : neighborhood) {
      h = MixHash(h, bond_key);
      h = MixHash(h, neighbor_rank);
    }
    invariants[static_cast<size_t>(atom)] = h;
  }
  return Densify(invariants);
}

std::vector<int32_t> RefineToFixpoint(const MolecularGraph& molecule,
                                      std::vector<int32_t> ranks) {
  int32_t distinct = DistinctCount(ranks);
  for (int32_t iteration = 0; iteration < molecule.num_atoms();
       ++iteration) {
    auto next = Refine(molecule, ranks);
    const int32_t next_distinct = DistinctCount(next);
    if (next_distinct == distinct) break;
    ranks = std::move(next);
    distinct = next_distinct;
  }
  return ranks;
}

bool IsOrganicSubset(const std::string& element) {
  return element == "B" || element == "C" || element == "N" ||
         element == "O" || element == "P" || element == "S" ||
         element == "F" || element == "Cl" || element == "Br" ||
         element == "I";
}

/// Emits an atom token, bracketed when charge/H-count/exotic element
/// requires it.
std::string AtomToken(const Atom& atom) {
  std::string symbol = atom.element;
  if (atom.aromatic) {
    symbol[0] = static_cast<char>(
        std::tolower(static_cast<unsigned char>(symbol[0])));
  }
  const bool needs_bracket = atom.charge != 0 ||
                             atom.explicit_hydrogens >= 0 ||
                             !IsOrganicSubset(atom.element);
  if (!needs_bracket) return symbol;
  std::string token = "[" + symbol;
  if (atom.explicit_hydrogens > 0) {
    token += 'H';
    if (atom.explicit_hydrogens > 1) {
      token += std::to_string(atom.explicit_hydrogens);
    }
  }
  if (atom.charge != 0) {
    token += atom.charge > 0 ? '+' : '-';
    const int32_t magnitude = std::abs(atom.charge);
    if (magnitude > 1) token += std::to_string(magnitude);
  }
  token += ']';
  return token;
}

std::string BondSymbol(const Bond& bond) {
  if (bond.order == 2) return "=";
  if (bond.order == 3) return "#";
  return "";  // single and aromatic bonds are implicit
}

std::string RingDigitToken(int32_t digit) {
  if (digit < 10) return std::to_string(digit);
  char buffer[8];
  std::snprintf(buffer, sizeof(buffer), "%%%02d", digit);
  return buffer;
}

/// Canonical DFS SMILES writer for one connected component.
class ComponentWriter {
 public:
  ComponentWriter(const MolecularGraph& molecule,
                  const std::vector<int32_t>& ranks)
      : molecule_(molecule),
        ranks_(ranks),
        visited_(static_cast<size_t>(molecule.num_atoms()), false),
        bond_used_(static_cast<size_t>(molecule.num_bonds()), false) {}

  std::string Write(int32_t root) {
    next_ring_digit_ = 1;
    return WriteAtom(root, /*parent_bond=*/-1);
  }

  const std::vector<bool>& visited() const { return visited_; }

 private:
  /// Neighbors of `atom` by ascending canonical rank (deterministic).
  std::vector<int32_t> OrderedBonds(int32_t atom) const {
    std::vector<int32_t> bonds(molecule_.IncidentBonds(atom).begin(),
                               molecule_.IncidentBonds(atom).end());
    std::sort(bonds.begin(), bonds.end(),
              [this, atom](int32_t a, int32_t b) {
                const int32_t ra =
                    ranks_[static_cast<size_t>(molecule_.OtherEnd(a, atom))];
                const int32_t rb =
                    ranks_[static_cast<size_t>(molecule_.OtherEnd(b, atom))];
                if (ra != rb) return ra < rb;
                return a < b;
              });
    return bonds;
  }

  std::string WriteAtom(int32_t atom, int32_t parent_bond) {
    visited_[static_cast<size_t>(atom)] = true;
    std::string out = AtomToken(molecule_.atom(atom));

    // Pass 1: classify incident bonds (ring closures vs tree children).
    std::vector<int32_t> children;
    for (int32_t bond_index : OrderedBonds(atom)) {
      if (bond_index == parent_bond ||
          bond_used_[static_cast<size_t>(bond_index)]) {
        continue;
      }
      const int32_t other = molecule_.OtherEnd(bond_index, atom);
      if (visited_[static_cast<size_t>(other)]) {
        // Back edge: open a ring closure here, close at the ancestor's
        // pending list.
        bond_used_[static_cast<size_t>(bond_index)] = true;
        const int32_t digit = next_ring_digit_++;
        out += BondSymbol(molecule_.bond(bond_index));
        out += RingDigitToken(digit);
        pending_ring_digits_[other].push_back(digit);
      } else {
        children.push_back(bond_index);
      }
    }
    // Ring closures opened by descendants that close at this atom were
    // recorded before we emitted — but closure digits must follow the
    // atom token, and descendants run after us. The writer therefore
    // emits closures discovered *so far*; digits recorded later are
    // spliced via the placeholder below.
    out += kClosureAnchor;

    for (size_t c = 0; c < children.size(); ++c) {
      const int32_t bond_index = children[c];
      if (bond_used_[static_cast<size_t>(bond_index)]) continue;
      bond_used_[static_cast<size_t>(bond_index)] = true;
      const int32_t child = molecule_.OtherEnd(bond_index, atom);
      if (visited_[static_cast<size_t>(child)]) continue;
      std::string branch = BondSymbol(molecule_.bond(bond_index)) +
                           WriteAtom(child, bond_index);
      const bool last = (c + 1 == children.size());
      out += last ? branch : "(" + branch + ")";
    }

    // Splice this atom's closure digits into its anchor.
    std::string closures;
    auto it = pending_ring_digits_.find(atom);
    if (it != pending_ring_digits_.end()) {
      for (int32_t digit : it->second) closures += RingDigitToken(digit);
    }
    const size_t anchor = out.find(kClosureAnchor);
    out.replace(anchor, sizeof(kClosureAnchor) - 1, closures);
    return out;
  }

  static constexpr char kClosureAnchor[] = "\x01";

  const MolecularGraph& molecule_;
  const std::vector<int32_t>& ranks_;
  std::vector<bool> visited_;
  std::vector<bool> bond_used_;
  std::map<int32_t, std::vector<int32_t>> pending_ring_digits_;
  int32_t next_ring_digit_ = 1;
};

}  // namespace

std::vector<int32_t> CanonicalRanks(const MolecularGraph& molecule) {
  const int32_t n = molecule.num_atoms();
  std::vector<uint64_t> invariants(static_cast<size_t>(n));
  for (int32_t atom = 0; atom < n; ++atom) {
    const Atom& a = molecule.atom(atom);
    uint64_t h = 1469598103934665603ULL;
    for (char c : a.element) h = MixHash(h, static_cast<uint64_t>(c));
    h = MixHash(h, a.aromatic ? 1 : 0);
    h = MixHash(h, static_cast<uint64_t>(a.charge + 16));
    h = MixHash(h, static_cast<uint64_t>(
                       std::max(a.explicit_hydrogens, -1) + 1));
    h = MixHash(h, static_cast<uint64_t>(molecule.Degree(atom)));
    invariants[static_cast<size_t>(atom)] = h;
  }
  std::vector<int32_t> ranks =
      RefineToFixpoint(molecule, Densify(invariants));

  // Tie-breaking: while classes remain, split the lowest tied class and
  // re-refine. For automorphic ties any member yields the same string.
  while (DistinctCount(ranks) < n) {
    std::map<int32_t, std::vector<int32_t>> classes;
    for (int32_t atom = 0; atom < n; ++atom) {
      classes[ranks[static_cast<size_t>(atom)]].push_back(atom);
    }
    for (const auto& [rank, atoms] : classes) {
      if (atoms.size() > 1) {
        // Promote one member: double all ranks, subtract 1 for the
        // chosen atom so it becomes unique, then re-refine.
        for (auto& r : ranks) r *= 2;
        ranks[static_cast<size_t>(atoms.front())] -= 1;
        break;
      }
    }
    std::vector<uint64_t> as_invariants(ranks.begin(), ranks.end());
    ranks = RefineToFixpoint(molecule, Densify(as_invariants));
  }
  return ranks;
}

Result<std::string> CanonicalSmiles(const std::string& smiles) {
  auto molecule_or = MolecularGraph::FromSmiles(smiles);
  if (!molecule_or.ok()) return molecule_or.status();
  const MolecularGraph& molecule = molecule_or.value();
  if (molecule.num_atoms() == 0) {
    return Status::InvalidArgument("no atoms in SMILES");
  }
  const std::vector<int32_t> ranks = CanonicalRanks(molecule);

  // Write each connected component from its minimum-rank atom; order
  // components lexicographically so the output is spelling-independent.
  ComponentWriter writer(molecule, ranks);
  std::vector<int32_t> atoms_by_rank(
      static_cast<size_t>(molecule.num_atoms()));
  for (int32_t atom = 0; atom < molecule.num_atoms(); ++atom) {
    atoms_by_rank[static_cast<size_t>(ranks[static_cast<size_t>(atom)])] =
        atom;
  }
  std::vector<std::string> components;
  for (int32_t root : atoms_by_rank) {
    if (writer.visited()[static_cast<size_t>(root)]) continue;
    components.push_back(writer.Write(root));
  }
  std::sort(components.begin(), components.end());
  std::string out;
  for (size_t c = 0; c < components.size(); ++c) {
    if (c > 0) out += '.';
    out += components[c];
  }
  return out;
}

}  // namespace hygnn::chem
