#ifndef HYGNN_CHEM_SMILES_H_
#define HYGNN_CHEM_SMILES_H_

#include <string>
#include <vector>

#include "core/status.h"

namespace hygnn::chem {

/// Kind of a lexical SMILES token.
enum class SmilesTokenType {
  kAtom,         // organic-subset atom: C, N, O, Cl, c, n, ...
  kBracketAtom,  // bracketed atom expression: [NH4+], [C@@H], ...
  kBond,         // - = # : / '\'
  kRingBond,     // ring-closure digit or %nn
  kBranchOpen,   // (
  kBranchClose,  // )
  kDot,          // . (disconnected components)
};

/// One lexical token of a SMILES string.
struct SmilesToken {
  SmilesTokenType type;
  std::string text;

  bool operator==(const SmilesToken& other) const {
    return type == other.type && text == other.text;
  }
};

/// Splits a SMILES string into lexical tokens. Fails with
/// InvalidArgument on characters outside the SMILES alphabet, unknown
/// element symbols, or an unterminated bracket atom.
core::Result<std::vector<SmilesToken>> TokenizeSmiles(
    const std::string& smiles);

/// Validates SMILES syntax beyond tokenization: balanced parentheses,
/// paired ring-closure digits, no leading/trailing dangling bond, no
/// empty branches.
core::Status ValidateSmiles(const std::string& smiles);

/// Normalizes a SMILES string for substructure mining: strips
/// whitespace and removes redundant explicit single-bond symbols between
/// atoms. This plays the role the paper assigns to PubChem
/// canonicalization — guaranteeing a clean, consistent token stream.
core::Result<std::string> NormalizeSmiles(const std::string& smiles);

/// Convenience: token texts in order (for substructure mining).
std::vector<std::string> TokenTexts(const std::vector<SmilesToken>& tokens);

}  // namespace hygnn::chem

#endif  // HYGNN_CHEM_SMILES_H_
