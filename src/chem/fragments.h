#ifndef HYGNN_CHEM_FRAGMENTS_H_
#define HYGNN_CHEM_FRAGMENTS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace hygnn::chem {

/// A chemical fragment used by the synthetic drug generator. Fragments
/// are syntactically self-contained SMILES snippets (all rings closed)
/// that can be concatenated into a chain or wrapped as a branch.
struct Fragment {
  std::string name;    // e.g. "carboxyl"
  std::string smiles;  // e.g. "C(=O)O"
  /// Functional-group family used by the latent DDI ground-truth rule.
  /// -1 marks inert filler that never participates in interactions.
  int32_t reactive_class = -1;
  /// True when the fragment must terminate a chain (e.g. halogens);
  /// such fragments are attached as branches or placed last.
  bool terminal_only = false;
};

/// The built-in functional-group library: ~24 named functional groups
/// spanning the reactive classes plus inert fillers. Every snippet
/// passes `ValidateSmiles`, alone and in generated compositions.
const std::vector<Fragment>& StandardFragmentLibrary();

/// Indices into StandardFragmentLibrary() of functional groups
/// (reactive_class >= 0).
std::vector<int32_t> FunctionalGroupIndices();

/// Indices of inert filler fragments (reactive_class == -1).
std::vector<int32_t> FillerIndices();

/// Number of distinct reactive classes in the standard library.
int32_t NumReactiveClasses();

}  // namespace hygnn::chem

#endif  // HYGNN_CHEM_FRAGMENTS_H_
