#include "chem/strobemer.h"

#include <unordered_set>

namespace hygnn::chem {

using core::Result;
using core::Status;

namespace {

/// FNV-1a over a character window, mixed with a seed and the previous
/// strobe's hash (the "rand" conditioning of randstrobes).
uint64_t WindowHash(const std::string& s, int64_t begin, int64_t k,
                    uint64_t condition) {
  uint64_t h = 1469598103934665603ULL ^ condition;
  for (int64_t i = begin; i < begin + k; ++i) {
    h ^= static_cast<unsigned char>(s[static_cast<size_t>(i)]);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

Result<std::vector<std::string>> ExtractRandstrobes(
    const std::string& smiles, const StrobemerConfig& config) {
  if (config.k < 1) return Status::InvalidArgument("k must be >= 1");
  if (config.w_min < 1 || config.w_max < config.w_min) {
    return Status::InvalidArgument("invalid window [w_min, w_max]");
  }
  if (smiles.empty()) return Status::InvalidArgument("empty SMILES string");

  const int64_t l = static_cast<int64_t>(smiles.size());
  // Anchor i needs strobe 1 at [i, i+k) and strobe 2 starting inside
  // [i+k+w_min-1, i+k+w_max-1] with k chars available.
  const int64_t last_anchor = l - (2 * config.k + config.w_min - 1);
  std::vector<std::string> strobemers;
  if (last_anchor < 0) {
    strobemers.push_back(smiles);
    return strobemers;
  }
  for (int64_t i = 0; i <= last_anchor; ++i) {
    const uint64_t strobe1_hash =
        WindowHash(smiles, i, config.k, config.hash_seed);
    const int64_t window_begin = i + config.k + config.w_min - 1;
    const int64_t window_end =
        std::min(i + config.k + config.w_max - 1, l - config.k);
    int64_t best_pos = window_begin;
    uint64_t best_hash = WindowHash(smiles, window_begin, config.k,
                                    strobe1_hash);
    for (int64_t j = window_begin + 1; j <= window_end; ++j) {
      const uint64_t h = WindowHash(smiles, j, config.k, strobe1_hash);
      if (h < best_hash) {
        best_hash = h;
        best_pos = j;
      }
    }
    std::string strobemer =
        smiles.substr(static_cast<size_t>(i), static_cast<size_t>(config.k));
    strobemer += '~';
    strobemer += smiles.substr(static_cast<size_t>(best_pos),
                               static_cast<size_t>(config.k));
    strobemers.push_back(std::move(strobemer));
  }
  return strobemers;
}

Result<std::vector<std::string>> ExtractUniqueRandstrobes(
    const std::string& smiles, const StrobemerConfig& config) {
  auto strobemers_or = ExtractRandstrobes(smiles, config);
  if (!strobemers_or.ok()) return strobemers_or.status();
  std::vector<std::string> unique;
  std::unordered_set<std::string> seen;
  for (auto& s : strobemers_or.value()) {
    if (seen.insert(s).second) unique.push_back(s);
  }
  return unique;
}

}  // namespace hygnn::chem
