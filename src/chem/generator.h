#ifndef HYGNN_CHEM_GENERATOR_H_
#define HYGNN_CHEM_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "chem/fragments.h"
#include "core/rng.h"
#include "core/status.h"

namespace hygnn::chem {

/// Assembles syntactically valid SMILES strings from fragments. This is
/// the synthetic stand-in for DrugBank molecules: every generated string
/// passes `ValidateSmiles`, contains exactly the requested functional
/// groups plus random inert filler, and therefore carries the structural
/// signal the latent DDI rule is defined on.
class SmilesGenerator {
 public:
  /// Uses `library` (defaults to the standard library when empty).
  explicit SmilesGenerator(std::vector<Fragment> library = {});

  /// Generates one SMILES containing every fragment in
  /// `fragment_indices` (indices into the library), interleaved with
  /// `filler_count` random inert fragments. Terminal-only fragments are
  /// attached as branches. Order is randomized via `rng`.
  core::Result<std::string> Generate(
      const std::vector<int32_t>& fragment_indices, int32_t filler_count,
      core::Rng* rng) const;

  const std::vector<Fragment>& library() const { return library_; }

 private:
  std::vector<Fragment> library_;
  std::vector<int32_t> filler_indices_;
};

}  // namespace hygnn::chem

#endif  // HYGNN_CHEM_GENERATOR_H_
