#ifndef HYGNN_CHEM_ESPF_H_
#define HYGNN_CHEM_ESPF_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/status.h"

namespace hygnn::chem {

/// Configuration for ESPF substructure mining.
struct EspfConfig {
  /// Minimum corpus frequency for a merged substructure to enter the
  /// vocabulary. The paper uses 5 on the 824-drug DrugBank corpus.
  int64_t frequency_threshold = 5;
  /// Upper bound on learned merge operations (safety valve; the paper's
  /// run produced 741 unique substructures).
  int64_t max_merges = 100000;
};

/// Explainable Substructure Partition Fingerprint (Huang et al. 2019).
///
/// ESPF is byte-pair encoding over SMILES token streams: it repeatedly
/// merges the most frequent adjacent token pair whose count stays at or
/// above `frequency_threshold`, producing a vocabulary of "moderate-sized
/// frequent substructures". Segmentation replays the learned merges so
/// any drug — including one unseen during training — decomposes into
/// frequent substructures ordered as in the original string.
class Espf {
 public:
  /// Learns merge operations from a corpus of SMILES strings. Invalid
  /// SMILES yield InvalidArgument.
  static core::Result<Espf> Train(const std::vector<std::string>& corpus,
                                  const EspfConfig& config);

  /// Decomposes a SMILES string into frequent substructures by replaying
  /// the learned merges (BPE application).
  core::Result<std::vector<std::string>> Segment(
      const std::string& smiles) const;

  /// Number of learned merge operations.
  int64_t num_merges() const { return static_cast<int64_t>(merges_.size()); }

  /// Distinct substructures observed in the segmented training corpus,
  /// ordered from most to least frequent (the paper's vocabulary list F).
  const std::vector<std::string>& vocabulary() const { return vocabulary_; }

 private:
  struct Merge {
    std::string left;
    std::string right;
  };

  /// Applies learned merges (in learned order) to a token sequence.
  std::vector<std::string> ApplyMerges(std::vector<std::string> units) const;

  std::vector<Merge> merges_;
  std::vector<std::string> vocabulary_;
};

}  // namespace hygnn::chem

#endif  // HYGNN_CHEM_ESPF_H_
