#include "chem/vocab.h"

#include <algorithm>

#include "core/logging.h"

namespace hygnn::chem {

int32_t SubstructureVocabulary::AddOrGet(const std::string& substructure) {
  auto it = index_.find(substructure);
  if (it != index_.end()) return it->second;
  const int32_t id = static_cast<int32_t>(texts_.size());
  index_.emplace(substructure, id);
  texts_.push_back(substructure);
  counts_.push_back(0);
  return id;
}

int32_t SubstructureVocabulary::Find(const std::string& substructure) const {
  auto it = index_.find(substructure);
  return it == index_.end() ? -1 : it->second;
}

void SubstructureVocabulary::CountOccurrence(int32_t id, int64_t delta) {
  HYGNN_CHECK(id >= 0 && id < size());
  counts_[id] += delta;
}

const std::string& SubstructureVocabulary::Text(int32_t id) const {
  HYGNN_CHECK(id >= 0 && id < size());
  return texts_[id];
}

int64_t SubstructureVocabulary::Frequency(int32_t id) const {
  HYGNN_CHECK(id >= 0 && id < size());
  return counts_[id];
}

std::vector<int32_t> SubstructureVocabulary::IdsByFrequency() const {
  std::vector<int32_t> ids(texts_.size());
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<int32_t>(i);
  std::sort(ids.begin(), ids.end(), [this](int32_t a, int32_t b) {
    if (counts_[a] != counts_[b]) return counts_[a] > counts_[b];
    return a < b;
  });
  return ids;
}

}  // namespace hygnn::chem
