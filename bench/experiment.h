#ifndef HYGNN_BENCH_EXPERIMENT_H_
#define HYGNN_BENCH_EXPERIMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "baselines/baselines.h"
#include "core/flags.h"
#include "data/featurize.h"
#include "data/generator.h"
#include "data/pairs.h"
#include "hygnn/model.h"
#include "hygnn/trainer.h"
#include "metrics/metrics.h"

namespace hygnn::bench {

/// Shared configuration for the table/figure benches. Defaults are the
/// scaled-down configuration (finishes in minutes on a laptop CPU);
/// paper scale is `--drugs 824 --epochs 600 --runs 5 --espf_threshold 5
/// --kmer_k 10`.
struct ExperimentConfig {
  int32_t num_drugs = 200;
  uint64_t seed = 42;
  int32_t runs = 3;
  int32_t epochs = 200;
  double train_fraction = 0.7;
  int64_t espf_threshold = 3;
  int64_t kmer_k = 6;
  int64_t hidden_dim = 64;
  /// Observation noise of the recorded-DDI list (see DatasetConfig).
  double keep_prob = 0.85;
  double fp_rate = 0.015;
  bool verbose = false;

  /// Reads overrides from --drugs/--seed/--runs/--epochs/
  /// --train_fraction/--espf_threshold/--kmer_k/--hidden_dim/--verbose.
  static ExperimentConfig FromFlags(const core::FlagParser& flags);

  baselines::BaselineConfig ToBaselineConfig() const;
};

/// One prepared evaluation round: dataset + both featurizations + a
/// fresh balanced split. Each of the paper's 5 repetitions is one Round
/// with a different split seed.
struct Round {
  const data::DdiDataset* dataset = nullptr;
  const data::SubstructureFeaturizer* espf = nullptr;
  const data::SubstructureFeaturizer* kmer = nullptr;
  data::PairSplit split;
  uint64_t seed = 0;

  baselines::BaselineInputs MakeBaselineInputs() const;
};

/// Owns the corpus and featurizers for a whole experiment and produces
/// per-run Rounds with fresh splits.
class ExperimentContext {
 public:
  explicit ExperimentContext(const ExperimentConfig& config);

  /// A fresh balanced split for repetition `run_index`, optionally with
  /// a non-default training fraction (Figure 2 sweeps it).
  Round MakeRound(int32_t run_index, double train_fraction) const;
  Round MakeRound(int32_t run_index) const;

  const data::DdiDataset& dataset() const { return dataset_; }
  const data::SubstructureFeaturizer& espf() const { return espf_; }
  const data::SubstructureFeaturizer& kmer() const { return kmer_; }
  const ExperimentConfig& config() const { return config_; }

 private:
  ExperimentConfig config_;
  data::DdiDataset dataset_;
  data::SubstructureFeaturizer espf_;
  data::SubstructureFeaturizer kmer_;
};

/// Substructure source for a HyGNN variant (paper: ESPF vs k-mer).
enum class HyGnnFeatures { kEspf, kKmer };

/// Trains one HyGNN variant on the round's split and evaluates on its
/// test fold.
model::EvalResult RunHyGnnVariant(const Round& round, HyGnnFeatures features,
                                  model::DecoderKind decoder,
                                  const ExperimentConfig& config);

/// Mean metrics over repeated runs of a (re-seeded) experiment closure.
struct AggregatedResult {
  metrics::Aggregate f1;
  metrics::Aggregate roc_auc;
  metrics::Aggregate pr_auc;
};

AggregatedResult Aggregate(const std::vector<model::EvalResult>& results);

/// Prints one Table-I-style row: group | method | F1 | ROC-AUC | PR-AUC.
void PrintTableRow(const std::string& group, const std::string& method,
                   const AggregatedResult& result);

/// Prints the table header matching PrintTableRow's columns.
void PrintTableHeader();

}  // namespace hygnn::bench

#endif  // HYGNN_BENCH_EXPERIMENT_H_
