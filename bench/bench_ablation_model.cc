// Model-design ablations for the HyGNN encoder — the experiments that
// back the paper's §IV-D analysis ("the main strength of our HyGNN is
// the proposed hypergraph edge encoder that has two levels of attention
// mechanism"):
//
//   * two-level attention vs uniform (mean) aggregation,
//   * encoder depth (eq. 1 stacked 1-3 times; paper uses 1),
//   * embedding width,
//   * strobemers as a third substructure source (paper §III-B cites
//     them next to ESPF and k-mers).

#include <cstdio>
#include <vector>

#include "bench/experiment.h"
#include "core/logging.h"
#include "data/featurize.h"
#include "graph/builders.h"

namespace hygnn::bench {
namespace {

/// Trains a HyGNN variant with explicit overrides; mirrors
/// RunHyGnnVariant but exposes the knobs this ablation sweeps.
model::EvalResult RunVariant(const Round& round,
                             const data::SubstructureFeaturizer& featurizer,
                             const ExperimentConfig& config,
                             bool use_attention, int32_t num_layers,
                             int64_t hidden_dim) {
  auto hypergraph = graph::BuildDrugHypergraph(
      featurizer.drug_substructures(), featurizer.num_substructures());
  auto context = model::HypergraphContext::FromHypergraph(hypergraph);
  core::Rng rng(round.seed ^ 0xfeed);
  model::HyGnnConfig model_config;
  model_config.encoder.hidden_dim = hidden_dim;
  model_config.encoder.output_dim = hidden_dim;
  model_config.encoder.dropout = 0.1f;
  model_config.encoder.use_attention = use_attention;
  model_config.num_layers = num_layers;
  model_config.decoder_hidden_dim = hidden_dim;
  model::HyGnnModel model(featurizer.num_substructures(), model_config,
                          &rng);
  model::TrainConfig train_config;
  train_config.epochs = config.epochs;
  train_config.weight_decay = 1e-4f;
  train_config.seed = round.seed ^ 0xbeef;
  model::HyGnnTrainer trainer(&model, train_config);
  trainer.Fit(context, round.split.train);
  return trainer.Evaluate(context, round.split.test);
}

struct Row {
  std::string name;
  bool use_attention;
  int32_t num_layers;
  int64_t hidden_dim;
};

int Main(int argc, const char* const* argv) {
  core::FlagParser flags;
  if (!flags.Parse(argc, argv).ok()) return 1;
  ExperimentConfig config = ExperimentConfig::FromFlags(flags);
  ExperimentContext context(config);

  std::printf("=== Model ablations (ESPF features, MLP decoder, %d drugs, "
              "%d runs) ===\n",
              config.num_drugs, config.runs);
  PrintTableHeader();

  const std::vector<Row> rows = {
      {"paper config", true, 1, config.hidden_dim},
      {"no attention", false, 1, config.hidden_dim},
      {"2 layers", true, 2, config.hidden_dim},
      {"3 layers", true, 3, config.hidden_dim},
      {"width 16", true, 1, 16},
      {"width 32", true, 1, 32},
      {"width 128", true, 1, 128},
  };
  for (const auto& row : rows) {
    std::vector<model::EvalResult> results;
    for (int32_t run = 0; run < config.runs; ++run) {
      Round round = context.MakeRound(run);
      results.push_back(RunVariant(round, context.espf(), config,
                                   row.use_attention, row.num_layers,
                                   row.hidden_dim));
    }
    PrintTableRow("HyGNN encoder", row.name, Aggregate(results));
  }

  // Strobemer featurization as an alternative substructure source.
  data::FeaturizeConfig strobemer_config;
  strobemer_config.mode = data::SubstructureMode::kStrobemer;
  strobemer_config.strobemer.k = 3;
  strobemer_config.strobemer.w_min = 1;
  strobemer_config.strobemer.w_max = 6;
  auto strobemer_featurizer_or = data::SubstructureFeaturizer::Build(
      context.dataset().drugs(), strobemer_config);
  HYGNN_CHECK(strobemer_featurizer_or.ok());
  const auto& strobemer_featurizer = strobemer_featurizer_or.value();
  std::vector<model::EvalResult> results;
  for (int32_t run = 0; run < config.runs; ++run) {
    Round round = context.MakeRound(run);
    results.push_back(RunVariant(round, strobemer_featurizer, config,
                                 /*use_attention=*/true, /*num_layers=*/1,
                                 config.hidden_dim));
  }
  PrintTableRow("HyGNN features", "strobemer", Aggregate(results));
  std::printf("(strobemer vocabulary: %d substructures)\n",
              strobemer_featurizer.num_substructures());

  // Extra related-work baseline: Vilar et al.'s Morgan-fingerprint
  // Tanimoto similarity to known interactors (paper §II).
  std::vector<model::EvalResult> similarity_results;
  for (int32_t run = 0; run < config.runs; ++run) {
    Round round = context.MakeRound(run);
    similarity_results.push_back(baselines::RunMolecularSimilarity(
        round.MakeBaselineInputs(), config.ToBaselineConfig()));
  }
  PrintTableRow("Related work", "Vilar fp-sim", Aggregate(similarity_results));
  return 0;
}

}  // namespace
}  // namespace hygnn::bench

int main(int argc, char** argv) { return hygnn::bench::Main(argc, argv); }
