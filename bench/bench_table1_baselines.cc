// Reproduces Table I of the HyGNN paper: F1 / ROC-AUC / PR-AUC for the
// four baseline families and the four HyGNN variants (ESPF/k-mer x
// MLP/Dot), averaged over `--runs` repeated train/test splits.
//
// Scaled-down defaults; paper scale:
//   bench_table1_baselines --drugs 824 --epochs 600 --runs 5
//       --espf_threshold 5 --kmer_k 10

#include <cstdio>
#include <functional>
#include <vector>

#include "bench/experiment.h"
#include "core/stopwatch.h"

namespace hygnn::bench {
namespace {

using baselines::BaselineConfig;
using baselines::GnnKind;
using baselines::MlKind;
using baselines::RweKind;

struct TableEntry {
  std::string group;
  std::string method;
  std::function<model::EvalResult(const Round&)> run;
};

int Main(int argc, const char* const* argv) {
  core::FlagParser flags;
  if (!flags.Parse(argc, argv).ok()) return 1;
  ExperimentConfig config = ExperimentConfig::FromFlags(flags);
  ExperimentContext context(config);
  const BaselineConfig baseline_config = config.ToBaselineConfig();

  std::vector<TableEntry> entries;
  for (GnnKind kind : {GnnKind::kGcn, GnnKind::kSage, GnnKind::kGat}) {
    entries.push_back({"GNN on DDI graph", baselines::GnnKindName(kind),
                       [kind, &baseline_config](const Round& round) {
                         return RunGnnOnDdiGraph(round.MakeBaselineInputs(),
                                                 kind, baseline_config);
                       }});
  }
  for (RweKind kind : {RweKind::kNode2Vec, RweKind::kDeepWalk}) {
    entries.push_back({"RWE on DDI graph", baselines::RweKindName(kind),
                       [kind, &baseline_config](const Round& round) {
                         return RunRweOnDdiGraph(round.MakeBaselineInputs(),
                                                 kind, baseline_config);
                       }});
  }
  for (GnnKind kind : {GnnKind::kGcn, GnnKind::kSage, GnnKind::kGat}) {
    entries.push_back({"GNN on SSG graph", baselines::GnnKindName(kind),
                       [kind, &baseline_config](const Round& round) {
                         return RunGnnOnSsg(round.MakeBaselineInputs(),
                                            kind, baseline_config);
                       }});
  }
  for (MlKind kind : {MlKind::kNn, MlKind::kLr, MlKind::kKnn}) {
    entries.push_back(
        {"ML on drugs' FR", baselines::MlKindName(kind),
         [kind, &baseline_config](const Round& round) {
           return RunMlOnFunctionalRepresentation(
               round.MakeBaselineInputs(), kind, baseline_config);
         }});
  }
  const struct {
    HyGnnFeatures features;
    model::DecoderKind decoder;
    const char* name;
  } hygnn_variants[] = {
      {HyGnnFeatures::kEspf, model::DecoderKind::kMlp, "ESPF & MLP"},
      {HyGnnFeatures::kEspf, model::DecoderKind::kDot, "ESPF & Dot"},
      {HyGnnFeatures::kKmer, model::DecoderKind::kMlp, "k-mer & MLP"},
      {HyGnnFeatures::kKmer, model::DecoderKind::kDot, "k-mer & Dot"},
  };
  for (const auto& variant : hygnn_variants) {
    entries.push_back({"HyGNN", variant.name,
                       [&variant, &config](const Round& round) {
                         return RunHyGnnVariant(round, variant.features,
                                                variant.decoder, config);
                       }});
  }

  // Optional substring filter (e.g. --only HyGNN) for quick iteration.
  const std::string only = flags.GetString("only", "");

  std::printf("=== Table I: DDI prediction, %d drugs, %d runs, %d epochs "
              "===\n",
              config.num_drugs, config.runs, config.epochs);
  PrintTableHeader();
  core::Stopwatch total;
  for (const auto& entry : entries) {
    if (!only.empty() &&
        entry.group.find(only) == std::string::npos &&
        entry.method.find(only) == std::string::npos) {
      continue;
    }
    core::Stopwatch watch;
    std::vector<model::EvalResult> results;
    for (int32_t run = 0; run < config.runs; ++run) {
      results.push_back(entry.run(context.MakeRound(run)));
    }
    PrintTableRow(entry.group, entry.method, Aggregate(results));
    if (config.verbose) {
      std::fprintf(stderr, "  [%s %s took %.1fs]\n", entry.group.c_str(),
                   entry.method.c_str(), watch.ElapsedSeconds());
    }
  }
  std::printf("total time: %.1fs\n", total.ElapsedSeconds());
  return 0;
}

}  // namespace
}  // namespace hygnn::bench

int main(int argc, char** argv) { return hygnn::bench::Main(argc, argv); }
