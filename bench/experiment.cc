#include "bench/experiment.h"

#include <cstdio>

#include "core/logging.h"
#include "core/string_util.h"
#include "graph/builders.h"

namespace hygnn::bench {

namespace {

data::DdiDataset BuildDataset(const ExperimentConfig& config) {
  data::DatasetConfig data_config;
  data_config.num_drugs = config.num_drugs;
  data_config.seed = config.seed;
  data_config.positive_keep_prob = config.keep_prob;
  data_config.false_positive_rate = config.fp_rate;
  auto dataset_or = data::GenerateDataset(data_config);
  HYGNN_CHECK(dataset_or.ok()) << dataset_or.status().ToString();
  return std::move(dataset_or).value();
}

data::SubstructureFeaturizer BuildFeaturizer(
    const data::DdiDataset& dataset, data::SubstructureMode mode,
    const ExperimentConfig& config) {
  data::FeaturizeConfig feat_config;
  feat_config.mode = mode;
  feat_config.espf_frequency_threshold = config.espf_threshold;
  feat_config.kmer_k = config.kmer_k;
  auto featurizer_or =
      data::SubstructureFeaturizer::Build(dataset.drugs(), feat_config);
  HYGNN_CHECK(featurizer_or.ok()) << featurizer_or.status().ToString();
  return std::move(featurizer_or).value();
}

}  // namespace

ExperimentConfig ExperimentConfig::FromFlags(const core::FlagParser& flags) {
  ExperimentConfig config;
  config.num_drugs =
      static_cast<int32_t>(flags.GetInt("drugs", config.num_drugs));
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  config.runs = static_cast<int32_t>(flags.GetInt("runs", config.runs));
  config.epochs = static_cast<int32_t>(flags.GetInt("epochs",
                                                    config.epochs));
  config.train_fraction =
      flags.GetDouble("train_fraction", config.train_fraction);
  config.espf_threshold =
      flags.GetInt("espf_threshold", config.espf_threshold);
  config.kmer_k = flags.GetInt("kmer_k", config.kmer_k);
  config.hidden_dim = flags.GetInt("hidden_dim", config.hidden_dim);
  config.keep_prob = flags.GetDouble("keep_prob", config.keep_prob);
  config.fp_rate = flags.GetDouble("fp_rate", config.fp_rate);
  config.verbose = flags.GetBool("verbose", false);
  return config;
}

baselines::BaselineConfig ExperimentConfig::ToBaselineConfig() const {
  baselines::BaselineConfig config;
  config.embedding_dim = hidden_dim;
  config.classifier_hidden_dim = hidden_dim;
  config.epochs = epochs;
  return config;
}

baselines::BaselineInputs Round::MakeBaselineInputs() const {
  baselines::BaselineInputs inputs;
  inputs.num_drugs = dataset->num_drugs();
  inputs.drugs = &dataset->drugs();
  inputs.drug_substructures = &espf->drug_substructures();
  inputs.num_substructures = espf->num_substructures();
  inputs.train = split.train;
  inputs.test = split.test;
  inputs.seed = seed;
  return inputs;
}

ExperimentContext::ExperimentContext(const ExperimentConfig& config)
    : config_(config),
      dataset_(BuildDataset(config)),
      espf_(BuildFeaturizer(dataset_, data::SubstructureMode::kEspf,
                            config)),
      kmer_(BuildFeaturizer(dataset_, data::SubstructureMode::kKmer,
                            config)) {
  HYGNN_LOG(Info) << "corpus: " << dataset_.num_drugs() << " drugs, "
                  << dataset_.positives().size() << " recorded DDIs, "
                  << espf_.num_substructures() << " ESPF substructures, "
                  << kmer_.num_substructures() << " k-mers";
}

Round ExperimentContext::MakeRound(int32_t run_index,
                                   double train_fraction) const {
  Round round;
  round.dataset = &dataset_;
  round.espf = &espf_;
  round.kmer = &kmer_;
  round.seed = config_.seed + 1000 + static_cast<uint64_t>(run_index);
  core::Rng rng(round.seed);
  auto pairs = data::BuildBalancedPairs(dataset_, &rng);
  round.split = data::RandomSplit(std::move(pairs), train_fraction, &rng);
  return round;
}

Round ExperimentContext::MakeRound(int32_t run_index) const {
  return MakeRound(run_index, config_.train_fraction);
}

model::EvalResult RunHyGnnVariant(const Round& round, HyGnnFeatures features,
                                  model::DecoderKind decoder,
                                  const ExperimentConfig& config) {
  const data::SubstructureFeaturizer& featurizer =
      features == HyGnnFeatures::kEspf ? *round.espf : *round.kmer;
  auto hypergraph = graph::BuildDrugHypergraph(
      featurizer.drug_substructures(), featurizer.num_substructures());
  auto context = model::HypergraphContext::FromHypergraph(hypergraph);

  core::Rng rng(round.seed ^ 0xabcdef12);
  model::HyGnnConfig model_config;
  model_config.encoder.hidden_dim = config.hidden_dim;
  model_config.encoder.output_dim = config.hidden_dim;
  // The parameter-free dot decoder can only raise pair scores by growing
  // embedding magnitudes, so it needs a stronger leash than the MLP.
  const bool is_dot = decoder == model::DecoderKind::kDot;
  model_config.encoder.dropout = is_dot ? 0.2f : 0.1f;
  model_config.decoder = decoder;
  model_config.decoder_hidden_dim = config.hidden_dim;
  model::HyGnnModel model(featurizer.num_substructures(), model_config,
                          &rng);
  model::TrainConfig train_config;
  train_config.epochs = config.epochs;
  train_config.weight_decay = is_dot ? 1e-3f : 1e-4f;
  train_config.seed = round.seed ^ 0x12345678;
  train_config.verbose = config.verbose;
  model::HyGnnTrainer trainer(&model, train_config);
  trainer.Fit(context, round.split.train);
  return trainer.Evaluate(context, round.split.test);
}

AggregatedResult Aggregate(const std::vector<model::EvalResult>& results) {
  std::vector<double> f1, roc, pr;
  for (const auto& result : results) {
    f1.push_back(result.f1);
    roc.push_back(result.roc_auc);
    pr.push_back(result.pr_auc);
  }
  AggregatedResult aggregated;
  aggregated.f1 = metrics::AggregateOf(f1);
  aggregated.roc_auc = metrics::AggregateOf(roc);
  aggregated.pr_auc = metrics::AggregateOf(pr);
  return aggregated;
}

void PrintTableHeader() {
  std::printf("%-22s %-14s %8s %10s %10s\n", "Model", "Method", "F1",
              "ROC-AUC", "PR-AUC");
  std::printf("%s\n", std::string(68, '-').c_str());
}

void PrintTableRow(const std::string& group, const std::string& method,
                   const AggregatedResult& result) {
  std::printf("%-22s %-14s %8.3f %10.3f %10.3f\n", group.c_str(),
              method.c_str(), result.f1.mean, result.roc_auc.mean,
              result.pr_auc.mean);
  std::fflush(stdout);
}

}  // namespace hygnn::bench
