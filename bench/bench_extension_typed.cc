// Extension experiment beyond the paper: multi-relational (typed) DDI
// prediction, the setting of SumGNN and Decagon from the paper's
// related work. Every recorded DDI is labeled with the latent
// reactive-rule index that caused it; the typed HyGNN variant predicts
// *which* interaction fires, compared against a majority-class
// baseline.

#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "bench/experiment.h"
#include "graph/builders.h"
#include "hygnn/typed.h"

namespace hygnn::bench {
namespace {

int Main(int argc, const char* const* argv) {
  core::FlagParser flags;
  if (!flags.Parse(argc, argv).ok()) return 1;
  ExperimentConfig config = ExperimentConfig::FromFlags(flags);
  ExperimentContext context(config);
  const auto& dataset = context.dataset();
  const auto& featurizer = context.espf();

  const int32_t num_types =
      static_cast<int32_t>(dataset.reactive_rule().size());
  std::vector<model::TypedPair> typed;
  std::map<int32_t, int64_t> type_histogram;
  for (const auto& pair : dataset.positives()) {
    const int32_t type = dataset.OracleInteractionType(pair.a, pair.b);
    if (type >= 0) {
      typed.push_back({pair.a, pair.b, type});
      ++type_histogram[type];
    }
  }
  std::printf("=== Typed DDI extension: %zu positives over %d latent "
              "interaction types ===\n",
              typed.size(), num_types);

  auto hypergraph = graph::BuildDrugHypergraph(
      featurizer.drug_substructures(), featurizer.num_substructures());
  auto hyper_context = model::HypergraphContext::FromHypergraph(hypergraph);

  std::vector<double> accuracies, macro_f1s, majority_accuracies;
  for (int32_t run = 0; run < config.runs; ++run) {
    core::Rng rng(config.seed + 2000 + static_cast<uint64_t>(run));
    auto shuffled = typed;
    rng.Shuffle(shuffled);
    const size_t train_size =
        static_cast<size_t>(config.train_fraction *
                            static_cast<double>(shuffled.size()));
    std::vector<model::TypedPair> train(shuffled.begin(),
                                        shuffled.begin() + train_size);
    std::vector<model::TypedPair> test(shuffled.begin() + train_size,
                                       shuffled.end());

    model::EncoderConfig encoder_config;
    encoder_config.hidden_dim = config.hidden_dim;
    encoder_config.output_dim = config.hidden_dim;
    encoder_config.dropout = 0.1f;
    core::Rng model_rng(rng.Next());
    model::TypedHyGnnModel model(featurizer.num_substructures(), num_types,
                                 encoder_config, config.hidden_dim,
                                 &model_rng);
    model::TypedTrainConfig train_config;
    train_config.epochs = config.epochs;
    train_config.seed = rng.Next();
    model::TypedTrainer trainer(&model, train_config);
    trainer.Fit(hyper_context, train);
    auto result = trainer.Evaluate(hyper_context, test);
    accuracies.push_back(result.accuracy);
    macro_f1s.push_back(result.macro_f1);

    // Majority-class baseline on the same split.
    std::map<int32_t, int64_t> train_histogram;
    for (const auto& pair : train) ++train_histogram[pair.type];
    int32_t majority = 0;
    int64_t majority_count = 0;
    for (const auto& [type, count] : train_histogram) {
      if (count > majority_count) {
        majority = type;
        majority_count = count;
      }
    }
    int64_t correct = 0;
    for (const auto& pair : test) {
      if (pair.type == majority) ++correct;
    }
    majority_accuracies.push_back(static_cast<double>(correct) /
                                  static_cast<double>(test.size()));
  }

  std::printf("%-24s %10s %10s\n", "Model", "accuracy", "macro-F1");
  std::printf("%s\n", std::string(46, '-').c_str());
  std::printf("%-24s %10.3f %10.3f\n", "Typed HyGNN (ESPF)",
              metrics::AggregateOf(accuracies).mean,
              metrics::AggregateOf(macro_f1s).mean);
  std::printf("%-24s %10.3f %10s\n", "majority class",
              metrics::AggregateOf(majority_accuracies).mean, "-");
  return 0;
}

}  // namespace
}  // namespace hygnn::bench

int main(int argc, char** argv) { return hygnn::bench::Main(argc, argv); }
