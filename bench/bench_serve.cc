// Serving-path benchmark: cold forward (encoder re-run per request)
// vs the EmbeddingStore-backed cached PairScorer, plus top-K screening
// and incremental AddDrug latency. Verifies the cached path is
// bit-identical to the cold path and writes BENCH_serve.json
// (override with --json_out=PATH).
//
// The request shape mirrors interactive serving: small pair batches
// (default 64) against a fixed catalog, where re-encoding every drug
// per request dominates the cold path.

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "core/logging.h"
#include "obs/metrics.h"
#include "obs/optime.h"
#include "obs/sink.h"
#include "core/rng.h"
#include "core/stopwatch.h"
#include "data/featurize.h"
#include "data/generator.h"
#include "graph/builders.h"
#include "hygnn/model.h"
#include "hygnn/scorer.h"
#include "serve/bundle.h"
#include "serve/embedding_store.h"
#include "serve/scoring.h"

namespace hygnn {
namespace {

struct ServeBenchConfig {
  int32_t num_drugs = 200;
  int32_t batch_pairs = 64;
  int32_t requests = 50;
  uint64_t seed = 42;
  /// When non-empty, record serving metrics (per-stage latency
  /// histograms, cache counters, per-op kernel times) during the bench
  /// and flush them to this path as checksummed JSONL.
  std::string metrics_out;
};

int RunServeBench(const ServeBenchConfig& config,
                  const std::string& json_path) {
  obs::MetricsRecorder recorder(config.metrics_out);
  std::optional<obs::ScopedMetricsEnabled> metrics_scope;
  if (recorder.active()) {
    metrics_scope.emplace(true);
    obs::SetKernelTimingEnabled(true);
  }
  data::DatasetConfig data_config;
  data_config.num_drugs = config.num_drugs;
  data_config.seed = config.seed;
  auto dataset = data::GenerateDataset(data_config).value();
  data::FeaturizeConfig feat_config;
  feat_config.espf_frequency_threshold = 3;
  auto featurizer =
      data::SubstructureFeaturizer::Build(dataset.drugs(), feat_config)
          .value();
  // Hold the last drug out of the catalog for the AddDrug measurement.
  std::vector<std::vector<int32_t>> catalog(
      featurizer.drug_substructures().begin(),
      featurizer.drug_substructures().end() - 1);
  auto hypergraph =
      graph::BuildDrugHypergraph(catalog, featurizer.num_substructures());
  auto context = model::HypergraphContext::FromHypergraph(hypergraph);

  core::Rng rng(config.seed);
  model::HyGnnConfig model_config;
  auto model = model::HyGnnModel(featurizer.num_substructures(),
                                 model_config, &rng);

  // Request stream: `requests` batches of `batch_pairs` pairs each.
  const int32_t catalog_size = context.num_edges;
  core::Rng pair_rng(config.seed + 1);
  std::vector<std::vector<data::LabeledPair>> batches(
      static_cast<size_t>(config.requests));
  for (auto& batch : batches) {
    batch.reserve(static_cast<size_t>(config.batch_pairs));
    for (int32_t i = 0; i < config.batch_pairs; ++i) {
      const auto a = static_cast<int32_t>(
          pair_rng.UniformInt(static_cast<uint64_t>(catalog_size)));
      auto b = static_cast<int32_t>(
          pair_rng.UniformInt(static_cast<uint64_t>(catalog_size - 1)));
      if (b >= a) ++b;
      batch.push_back({a, b, 0.0f});
    }
  }

  const int64_t total_pairs =
      static_cast<int64_t>(config.requests) * config.batch_pairs;

  // Cold path: full forward (encoder + decoder) per request.
  model::ContextScorer cold(&model, &context);
  std::vector<std::vector<float>> cold_scores;
  core::Stopwatch cold_watch;
  for (const auto& batch : batches) cold_scores.push_back(cold.Score(batch));
  const double cold_seconds = cold_watch.ElapsedSeconds();

  // Cached path: encode the catalog once, then decoder-only scoring.
  serve::EmbeddingStore store(&model);
  core::Stopwatch rebuild_watch;
  HYGNN_CHECK(store.Rebuild(context).ok());
  const double rebuild_seconds = rebuild_watch.ElapsedSeconds();
  serve::PairScorer cached(&model, &store);
  std::vector<std::vector<float>> cached_scores;
  core::Stopwatch cached_watch;
  for (const auto& batch : batches) {
    auto response = cached.ScorePairs(serve::ScoreRequest{batch});
    HYGNN_CHECK(response.ok()) << response.status().ToString();
    cached_scores.push_back(std::move(response).value().scores);
  }
  const double cached_seconds = cached_watch.ElapsedSeconds();

  bool bit_identical = true;
  for (size_t r = 0; r < cold_scores.size(); ++r) {
    for (size_t i = 0; i < cold_scores[r].size(); ++i) {
      bit_identical =
          bit_identical && cold_scores[r][i] == cached_scores[r][i];
    }
  }

  // Screening: rank the whole catalog against one query drug.
  core::Stopwatch screen_watch;
  auto screen_response = serve::ScreeningEngine(&model, &store)
                             .Screen({/*query=*/0, /*top_k=*/10});
  const double screen_ms = screen_watch.ElapsedMillis();
  HYGNN_CHECK(screen_response.ok()) << screen_response.status().ToString();
  const auto& hits = screen_response.value().hits;

  // Cold-start join of the held-out drug (encoder has 1 layer here, so
  // the incremental path applies).
  core::Stopwatch add_watch;
  const auto added =
      store.AddDrugSmiles(featurizer, dataset.drugs().back().smiles);
  const double add_ms = add_watch.ElapsedMillis();
  HYGNN_CHECK(added.ok()) << added.status().ToString();

  const double cold_pps = static_cast<double>(total_pairs) / cold_seconds;
  const double cached_pps =
      static_cast<double>(total_pairs) / cached_seconds;
  const double speedup = cold_pps > 0.0 ? cached_pps / cold_pps : 0.0;

  std::printf("serve bench: %d drugs, %d requests x %d pairs\n",
              config.num_drugs, config.requests, config.batch_pairs);
  std::printf("  cold    %12.0f pairs/s\n", cold_pps);
  std::printf("  cached  %12.0f pairs/s  (%.1fx, rebuild %.1f ms)\n",
              cached_pps, speedup, rebuild_seconds * 1e3);
  std::printf("  screening top-10 of %d: %.2f ms (best drug %d)\n",
              catalog_size, screen_ms, hits.empty() ? -1 : hits[0].drug);
  std::printf("  AddDrug cold-start: %.3f ms\n", add_ms);
  std::printf("  bit_identical: %s\n", bit_identical ? "true" : "false");

  std::FILE* file = std::fopen(json_path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(
      file,
      "{\n  \"bench\": \"serve\",\n"
      "  \"num_drugs\": %d,\n  \"requests\": %d,\n  \"batch_pairs\": %d,\n"
      "  \"cold_pairs_per_sec\": %.1f,\n"
      "  \"cached_pairs_per_sec\": %.1f,\n"
      "  \"speedup\": %.2f,\n"
      "  \"rebuild_ms\": %.3f,\n"
      "  \"screening_top10_ms\": %.3f,\n"
      "  \"add_drug_ms\": %.3f,\n"
      "  \"bit_identical\": %s\n}\n",
      config.num_drugs, config.requests, config.batch_pairs, cold_pps,
      cached_pps, speedup, rebuild_seconds * 1e3, screen_ms, add_ms,
      bit_identical ? "true" : "false");
  std::fclose(file);
  std::printf("wrote %s\n", json_path.c_str());

  if (!bit_identical) {
    std::fprintf(stderr,
                 "FAIL: cached scores are not bit-identical to cold\n");
    return 1;
  }
  if (recorder.active()) {
    obs::SetKernelTimingEnabled(false);
    if (auto s = recorder.Flush(); !s.ok()) {
      std::fprintf(stderr, "FAIL: metrics flush: %s\n",
                   s.ToString().c_str());
      return 1;
    }
    std::printf("wrote metrics to %s\n", recorder.path().c_str());
  }
  return 0;
}

}  // namespace
}  // namespace hygnn

int main(int argc, char** argv) {
  hygnn::ServeBenchConfig config;
  std::string json_path = "BENCH_serve.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json_out=", 0) == 0) {
      json_path = arg.substr(std::string("--json_out=").size());
    } else if (arg.rfind("--drugs=", 0) == 0) {
      config.num_drugs = std::stoi(arg.substr(std::string("--drugs=").size()));
    } else if (arg.rfind("--batch=", 0) == 0) {
      config.batch_pairs = std::stoi(arg.substr(std::string("--batch=").size()));
    } else if (arg.rfind("--requests=", 0) == 0) {
      config.requests =
          std::stoi(arg.substr(std::string("--requests=").size()));
    } else if (arg.rfind("--metrics_out=", 0) == 0) {
      config.metrics_out =
          arg.substr(std::string("--metrics_out=").size());
    }
  }
  return hygnn::RunServeBench(config, json_path);
}
