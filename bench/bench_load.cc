// SLO load test for the serve::Server request pipeline: measures the
// pipeline's closed-loop capacity, then offers open-loop load at
// several fractions/multiples of it and reports sustained QPS,
// end-to-end latency percentiles (p50/p95/p99), and how many requests
// admission control shed at each level, into BENCH_load.json
// (override with --json_out=PATH). A second sweep holds offered load
// at 1x capacity and tightens per-request deadlines (none, 10 ms,
// 1 ms) with client retries on, reporting the completed/shed/expired/
// retried breakdown at each deadline.
//
// Before any load runs, every pooled request is scored once through
// the server and once serially through PairScorer::ScorePairs; the two
// must be bit-identical (memcmp) or the bench exits 1 — dynamic
// batching is only allowed to change *when* a pair is scored, never
// its value.
//
// Note: this container exposes a single CPU, so submitters, the
// batcher, and scorer workers time-slice one core; absolute QPS is
// modest and the interesting output is the *shape* — saturation at
// 1x capacity, shedding instead of collapse at overload.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/logging.h"
#include "core/rng.h"
#include "core/thread_pool.h"
#include "data/featurize.h"
#include "data/generator.h"
#include "graph/builders.h"
#include "hygnn/model.h"
#include "obs/metrics.h"
#include "obs/sink.h"
#include "serve/embedding_store.h"
#include "serve/loadgen.h"
#include "serve/request.h"
#include "serve/scoring.h"
#include "serve/server.h"

namespace hygnn {
namespace {

struct LoadBenchConfig {
  int32_t num_drugs = 150;
  int32_t pairs_per_request = 8;
  int32_t pool_requests = 64;
  double seconds_per_level = 1.0;
  int32_t submitters = 2;
  uint64_t seed = 42;
  serve::ServerOptions server;
  std::string metrics_out;
};

/// Closed-loop capacity probe: one submitter, blocking Score,
/// back-to-back. The sustained rate with zero queueing is the
/// pipeline's intrinsic capacity; offered-load levels are set
/// relative to it so the sweep brackets saturation on any machine.
double MeasureCapacityQps(serve::Server* server,
                          const std::vector<serve::ScoreRequest>& pool) {
  const int32_t warmup = 20;
  const int32_t measured = 200;
  for (int32_t i = 0; i < warmup; ++i) {
    auto r = server->Score(pool[static_cast<size_t>(i) % pool.size()]);
    HYGNN_CHECK(r.ok()) << r.status().ToString();
  }
  obs::Timer timer;
  for (int32_t i = 0; i < measured; ++i) {
    auto r = server->Score(pool[static_cast<size_t>(i) % pool.size()]);
    HYGNN_CHECK(r.ok()) << r.status().ToString();
  }
  return static_cast<double>(measured) / timer.ElapsedSeconds();
}

/// Scores every pooled request through the server and serially;
/// returns false on any bitwise mismatch.
bool VerifyBitIdentity(serve::Server* server,
                       const serve::PairScorer& serial,
                       const std::vector<serve::ScoreRequest>& pool) {
  for (size_t i = 0; i < pool.size(); ++i) {
    auto served = server->Score(pool[i]);
    auto expected = serial.ScorePairs(pool[i]);
    HYGNN_CHECK(served.ok()) << served.status().ToString();
    HYGNN_CHECK(expected.ok()) << expected.status().ToString();
    const auto& got = served.value().scores;
    const auto& want = expected.value().scores;
    if (got.size() != want.size() ||
        std::memcmp(got.data(), want.data(),
                    want.size() * sizeof(float)) != 0) {
      std::fprintf(stderr, "request %zu: served scores != serial\n", i);
      return false;
    }
  }
  return true;
}

int RunLoadBench(const LoadBenchConfig& config,
                 const std::string& json_path) {
  obs::MetricsRecorder recorder(config.metrics_out);
  std::optional<obs::ScopedMetricsEnabled> metrics_scope;
  if (recorder.active()) metrics_scope.emplace(true);

  data::DatasetConfig data_config;
  data_config.num_drugs = config.num_drugs;
  data_config.seed = config.seed;
  auto dataset = data::GenerateDataset(data_config).value();
  data::FeaturizeConfig feat_config;
  feat_config.espf_frequency_threshold = 3;
  auto featurizer =
      data::SubstructureFeaturizer::Build(dataset.drugs(), feat_config)
          .value();
  auto hypergraph =
      graph::BuildDrugHypergraph(featurizer.drug_substructures(),
                                 featurizer.num_substructures());
  auto context = model::HypergraphContext::FromHypergraph(hypergraph);

  core::Rng rng(config.seed);
  model::HyGnnConfig model_config;
  auto model = model::HyGnnModel(featurizer.num_substructures(),
                                 model_config, &rng);
  serve::EmbeddingStore store(&model);
  HYGNN_CHECK(store.Rebuild(context).ok());

  // Seeded request pool shared by every level: identical offered work
  // across levels and across runs.
  const int32_t catalog = store.num_drugs();
  core::Rng pair_rng(config.seed + 1);
  std::vector<serve::ScoreRequest> pool(
      static_cast<size_t>(config.pool_requests));
  for (auto& request : pool) {
    request.pairs.reserve(static_cast<size_t>(config.pairs_per_request));
    for (int32_t i = 0; i < config.pairs_per_request; ++i) {
      const auto a = static_cast<int32_t>(
          pair_rng.UniformInt(static_cast<uint64_t>(catalog)));
      auto b = static_cast<int32_t>(
          pair_rng.UniformInt(static_cast<uint64_t>(catalog - 1)));
      if (b >= a) ++b;
      request.pairs.push_back({a, b, 0.0f});
    }
  }

  serve::Server server(&model, &store, config.server);
  HYGNN_CHECK(server.Start().ok());

  serve::PairScorer serial(&model, &store);
  const bool bit_identical = VerifyBitIdentity(&server, serial, pool);

  const double capacity_qps = MeasureCapacityQps(&server, pool);
  std::printf("load bench: %d drugs, %d-pair requests, workers=%d "
              "max_batch=%d max_wait_us=%lld queue=%d\n",
              config.num_drugs, config.pairs_per_request,
              config.server.workers, config.server.max_batch,
              static_cast<long long>(config.server.max_wait_us),
              config.server.queue_capacity);
  std::printf("  closed-loop capacity: %.0f req/s\n", capacity_qps);
  std::printf("  bit_identical vs serial: %s\n",
              bit_identical ? "true" : "false");

  const auto print_report = [](const char* label,
                               const serve::LoadReport& report) {
    std::printf("  %s: sustained %7.0f req/s  requests %llu "
                "(%llu attempts)  completed %llu  shed %llu  "
                "expired %llu  retried %llu/%llu ok  p50 %.0f us  "
                "p95 %.0f us  p99 %.0f us\n",
                label, report.sustained_qps,
                static_cast<unsigned long long>(report.submitted),
                static_cast<unsigned long long>(report.attempts),
                static_cast<unsigned long long>(report.completed),
                static_cast<unsigned long long>(report.shed),
                static_cast<unsigned long long>(report.expired),
                static_cast<unsigned long long>(report.retried_ok),
                static_cast<unsigned long long>(report.retried),
                report.p50_us, report.p95_us, report.p99_us);
  };

  const double fractions[] = {0.5, 1.0, 2.0};
  std::vector<serve::LoadReport> reports;
  for (const double fraction : fractions) {
    serve::LoadConfig load;
    load.offered_qps = capacity_qps * fraction;
    load.duration_seconds = config.seconds_per_level;
    load.submitters = config.submitters;
    reports.push_back(serve::RunLoad(&server, pool, load));
    char label[64];
    std::snprintf(label, sizeof(label), "offered %7.0f req/s (%.1fx)",
                  reports.back().offered_qps, fraction);
    print_report(label, reports.back());
  }

  // Deadline sweep: the same 1x-capacity load with per-request
  // deadlines of infinity, 10 ms, and 1 ms, retries on. What changes
  // is *how* pressure resolves — infinite deadlines only queue, tight
  // ones turn queueing into expiry/shedding that retries then absorb.
  const int64_t deadline_sweep_us[] = {0, 10000, 1000};
  std::vector<serve::LoadReport> deadline_reports;
  for (const int64_t timeout_us : deadline_sweep_us) {
    serve::LoadConfig load;
    load.offered_qps = capacity_qps;
    load.duration_seconds = config.seconds_per_level;
    load.submitters = config.submitters;
    load.timeout_us = timeout_us;
    load.retry = true;
    deadline_reports.push_back(serve::RunLoad(&server, pool, load));
    char label[64];
    if (timeout_us == 0) {
      std::snprintf(label, sizeof(label), "deadline      none (1.0x)");
    } else {
      std::snprintf(label, sizeof(label), "deadline %6lld us (1.0x)",
                    static_cast<long long>(timeout_us));
    }
    print_report(label, deadline_reports.back());
  }

  // Hot-swap scenario: 1x-capacity open-loop load with catalog
  // mutations published in the middle of the window. A background
  // thread AddDrugs while submitters keep offering; because AddDrug
  // only appends rows (existing rows are byte-copied into each new
  // epoch), every pooled request must afterwards still score
  // bit-identically to its pre-swap serial scores, and no in-flight
  // request may have failed.
  std::vector<std::vector<float>> pre_swap_scores;
  pre_swap_scores.reserve(pool.size());
  for (const auto& request : pool) {
    pre_swap_scores.push_back(serial.ScorePairs(request).value().scores);
  }
  const uint64_t generation_before = store.generation();
  serve::LoadReport swap_report;
  constexpr int32_t kSwapPublications = 4;
  {
    core::WorkerThread mutator([&store, &featurizer, &config] {
      // Each publication reuses an existing drug's substructure set
      // (the encoder input vocabulary is fixed), spread across the
      // load window so batches pin several distinct epochs.
      const auto& subs = featurizer.drug_substructures();
      for (int32_t i = 0; i < kSwapPublications; ++i) {
        std::this_thread::sleep_for(std::chrono::duration<double>(
            config.seconds_per_level /
            static_cast<double>(2 * kSwapPublications)));
        auto added =
            store.AddDrug(subs[static_cast<size_t>(i) % subs.size()]);
        HYGNN_CHECK(added.ok()) << added.status().ToString();
      }
    });
    serve::LoadConfig load;
    load.offered_qps = capacity_qps;
    load.duration_seconds = config.seconds_per_level;
    load.submitters = config.submitters;
    swap_report = serve::RunLoad(&server, pool, load);
    // mutator joins here (WorkerThread destructor).
  }
  const uint64_t generation_after = store.generation();
  bool swap_bit_identical = true;
  for (size_t i = 0; i < pool.size(); ++i) {
    const auto post = serial.ScorePairs(pool[i]).value().scores;
    if (post.size() != pre_swap_scores[i].size() ||
        std::memcmp(post.data(), pre_swap_scores[i].data(),
                    post.size() * sizeof(float)) != 0) {
      std::fprintf(stderr, "request %zu: post-swap scores != pre-swap\n",
                   i);
      swap_bit_identical = false;
    }
  }
  char swap_label[64];
  std::snprintf(swap_label, sizeof(swap_label),
                "swap x%d gen %llu->%llu (1.0x)", kSwapPublications,
                static_cast<unsigned long long>(generation_before),
                static_cast<unsigned long long>(generation_after));
  print_report(swap_label, swap_report);
  std::printf("  swap: bit_identical_after_swap %s  failed %llu\n",
              swap_bit_identical ? "true" : "false",
              static_cast<unsigned long long>(swap_report.failed));

  server.Shutdown();
  const auto stats = server.stats();
  std::printf("  pipeline totals: accepted %llu  completed %llu  "
              "shed %llu  expired %llu  hinted %llu  batches %llu\n",
              static_cast<unsigned long long>(stats.accepted),
              static_cast<unsigned long long>(stats.completed),
              static_cast<unsigned long long>(stats.shed),
              static_cast<unsigned long long>(stats.expired),
              static_cast<unsigned long long>(stats.retried_after_hint),
              static_cast<unsigned long long>(stats.batches));

  std::FILE* file = std::fopen(json_path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(file,
               "{\n  \"bench\": \"load\",\n"
               "  \"num_drugs\": %d,\n  \"pairs_per_request\": %d,\n"
               "  \"workers\": %d,\n  \"max_batch\": %d,\n"
               "  \"max_wait_us\": %lld,\n  \"queue_capacity\": %d,\n"
               "  \"submitters\": %d,\n"
               "  \"capacity_qps\": %.1f,\n"
               "  \"bit_identical\": %s,\n"
               "  \"levels\": [\n",
               config.num_drugs, config.pairs_per_request,
               config.server.workers, config.server.max_batch,
               static_cast<long long>(config.server.max_wait_us),
               config.server.queue_capacity, config.submitters,
               capacity_qps, bit_identical ? "true" : "false");
  const auto write_report = [file](const serve::LoadReport& report,
                                   int64_t timeout_us, bool last) {
    std::fprintf(file,
                 "    {\"offered_qps\": %.1f, \"duration_s\": %.2f, "
                 "\"timeout_us\": %lld, "
                 "\"submitted\": %llu, \"attempts\": %llu, "
                 "\"completed\": %llu, "
                 "\"shed\": %llu, \"failed\": %llu, "
                 "\"expired\": %llu, \"retried\": %llu, "
                 "\"retried_ok\": %llu, "
                 "\"sustained_qps\": %.1f, \"p50_us\": %.1f, "
                 "\"p95_us\": %.1f, \"p99_us\": %.1f}%s\n",
                 report.offered_qps, report.duration_seconds,
                 static_cast<long long>(timeout_us),
                 static_cast<unsigned long long>(report.submitted),
                 static_cast<unsigned long long>(report.attempts),
                 static_cast<unsigned long long>(report.completed),
                 static_cast<unsigned long long>(report.shed),
                 static_cast<unsigned long long>(report.failed),
                 static_cast<unsigned long long>(report.expired),
                 static_cast<unsigned long long>(report.retried),
                 static_cast<unsigned long long>(report.retried_ok),
                 report.sustained_qps, report.p50_us, report.p95_us,
                 report.p99_us, last ? "" : ",");
  };
  for (size_t i = 0; i < reports.size(); ++i) {
    write_report(reports[i], 0, i + 1 == reports.size());
  }
  std::fprintf(file, "  ],\n  \"deadline_sweep\": [\n");
  for (size_t i = 0; i < deadline_reports.size(); ++i) {
    write_report(deadline_reports[i], deadline_sweep_us[i],
                 i + 1 == deadline_reports.size());
  }
  std::fprintf(file,
               "  ],\n  \"swap\": {\n"
               "    \"publications\": %d,\n"
               "    \"generation_before\": %llu,\n"
               "    \"generation_after\": %llu,\n"
               "    \"bit_identical_after_swap\": %s,\n"
               "    \"report\":\n",
               kSwapPublications,
               static_cast<unsigned long long>(generation_before),
               static_cast<unsigned long long>(generation_after),
               swap_bit_identical ? "true" : "false");
  write_report(swap_report, 0, /*last=*/true);
  std::fprintf(file, "  }\n}\n");
  std::fclose(file);
  std::printf("wrote %s\n", json_path.c_str());

  if (recorder.active()) {
    if (auto s = recorder.Flush(); !s.ok()) {
      std::fprintf(stderr, "FAIL: metrics flush: %s\n",
                   s.ToString().c_str());
      return 1;
    }
    std::printf("wrote metrics to %s\n", recorder.path().c_str());
  }
  if (!bit_identical) {
    std::fprintf(stderr,
                 "FAIL: served scores are not bit-identical to serial\n");
    return 1;
  }
  if (!swap_bit_identical) {
    std::fprintf(stderr,
                 "FAIL: catalog swap moved pre-existing scores\n");
    return 1;
  }
  if (swap_report.failed != 0) {
    std::fprintf(stderr,
                 "FAIL: %llu in-flight requests failed during swap\n",
                 static_cast<unsigned long long>(swap_report.failed));
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace hygnn

int main(int argc, char** argv) {
  hygnn::LoadBenchConfig config;
  std::string json_path = "BENCH_load.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto int_flag = [&arg](const char* name, int32_t* out) {
      const std::string prefix = std::string("--") + name + "=";
      if (arg.rfind(prefix, 0) != 0) return false;
      *out = std::stoi(arg.substr(prefix.size()));
      return true;
    };
    int32_t max_wait = -1;
    if (arg.rfind("--json_out=", 0) == 0) {
      json_path = arg.substr(std::string("--json_out=").size());
    } else if (arg.rfind("--metrics_out=", 0) == 0) {
      config.metrics_out = arg.substr(std::string("--metrics_out=").size());
    } else if (arg.rfind("--seconds=", 0) == 0) {
      config.seconds_per_level =
          std::stod(arg.substr(std::string("--seconds=").size()));
    } else if (int_flag("drugs", &config.num_drugs) ||
               int_flag("pairs_per_request", &config.pairs_per_request) ||
               int_flag("submitters", &config.submitters) ||
               int_flag("workers", &config.server.workers) ||
               int_flag("max_batch", &config.server.max_batch) ||
               int_flag("queue_capacity", &config.server.queue_capacity)) {
    } else if (int_flag("max_wait_us", &max_wait)) {
      config.server.max_wait_us = max_wait;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 1;
    }
  }
  return hygnn::RunLoadBench(config, json_path);
}
