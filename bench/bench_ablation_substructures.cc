// Ablation backing the paper's §IV-A claim that "small changing of ESPF
// threshold and k value for k-mer do not affect the performance of the
// model": sweeps the ESPF frequency threshold and the k-mer k for the
// HyGNN (MLP decoder) variants and reports the resulting vocabulary
// size and metrics.

#include <cstdio>
#include <vector>

#include "bench/experiment.h"

namespace hygnn::bench {
namespace {

int Main(int argc, const char* const* argv) {
  core::FlagParser flags;
  if (!flags.Parse(argc, argv).ok()) return 1;
  ExperimentConfig config = ExperimentConfig::FromFlags(flags);

  std::printf("=== Ablation: substructure extraction sensitivity "
              "(%d drugs, %d runs) ===\n",
              config.num_drugs, config.runs);
  std::printf("%-18s %-10s %12s %8s %10s %10s\n", "Extractor", "param",
              "vocab size", "F1", "ROC-AUC", "PR-AUC");
  std::printf("%s\n", std::string(72, '-').c_str());

  for (int64_t threshold : {2, 3, 5, 8}) {
    ExperimentConfig sweep = config;
    sweep.espf_threshold = threshold;
    ExperimentContext context(sweep);
    std::vector<model::EvalResult> results;
    for (int32_t run = 0; run < sweep.runs; ++run) {
      results.push_back(RunHyGnnVariant(context.MakeRound(run),
                                        HyGnnFeatures::kEspf,
                                        model::DecoderKind::kMlp, sweep));
    }
    auto agg = Aggregate(results);
    std::printf("%-18s t=%-8lld %12d %8.3f %10.3f %10.3f\n", "ESPF",
                static_cast<long long>(threshold),
                context.espf().num_substructures(), agg.f1.mean,
                agg.roc_auc.mean, agg.pr_auc.mean);
    std::fflush(stdout);
  }

  for (int64_t k : {4, 6, 8, 10}) {
    ExperimentConfig sweep = config;
    sweep.kmer_k = k;
    ExperimentContext context(sweep);
    std::vector<model::EvalResult> results;
    for (int32_t run = 0; run < sweep.runs; ++run) {
      results.push_back(RunHyGnnVariant(context.MakeRound(run),
                                        HyGnnFeatures::kKmer,
                                        model::DecoderKind::kMlp, sweep));
    }
    auto agg = Aggregate(results);
    std::printf("%-18s k=%-8lld %12d %8.3f %10.3f %10.3f\n", "k-mer",
                static_cast<long long>(k),
                context.kmer().num_substructures(), agg.f1.mean,
                agg.roc_auc.mean, agg.pr_auc.mean);
    std::fflush(stdout);
  }
  return 0;
}

}  // namespace
}  // namespace hygnn::bench

int main(int argc, char** argv) { return hygnn::bench::Main(argc, argv); }
