// google-benchmark micro harness for the substrate operations that
// dominate HyGNN training: dense matmul, sparse-dense SpMM, the segment
// attention primitives, ESPF mining/segmentation, hypergraph
// construction, and random-walk generation.

#include <benchmark/benchmark.h>

#include "chem/espf.h"
#include "chem/generator.h"
#include "core/rng.h"
#include "data/featurize.h"
#include "data/generator.h"
#include "graph/builders.h"
#include "graph/random_walk.h"
#include "hygnn/encoder.h"
#include "tensor/init.h"
#include "tensor/ops.h"
#include "tensor/sparse.h"

namespace hygnn {
namespace {

void BM_MatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  core::Rng rng(1);
  tensor::Tensor a = tensor::NormalInit(n, n, 1.0f, &rng, false);
  tensor::Tensor b = tensor::NormalInit(n, n, 1.0f, &rng, false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(64)->Arg(128)->Arg(256);

void BM_SpMM(benchmark::State& state) {
  const int64_t n = state.range(0);
  const int64_t nnz_per_row = 16;
  core::Rng rng(2);
  std::vector<int32_t> rows, cols;
  std::vector<float> vals;
  for (int64_t r = 0; r < n; ++r) {
    for (int64_t k = 0; k < nnz_per_row; ++k) {
      rows.push_back(static_cast<int32_t>(r));
      cols.push_back(static_cast<int32_t>(rng.UniformInt(n)));
      vals.push_back(1.0f);
    }
  }
  auto a = tensor::CsrMatrix::FromCoo(n, n, rows, cols, vals);
  tensor::Tensor x = tensor::NormalInit(n, 64, 1.0f, &rng, false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::SpMM(a, x));
  }
  state.SetItemsProcessed(state.iterations() * a->nnz() * 64);
}
BENCHMARK(BM_SpMM)->Arg(1024)->Arg(4096);

void BM_SegmentSoftmaxSum(benchmark::State& state) {
  const int64_t pairs = state.range(0);
  const int64_t segments = pairs / 16;
  core::Rng rng(3);
  std::vector<int32_t> segment_ids(pairs);
  for (auto& s : segment_ids) {
    s = static_cast<int32_t>(rng.UniformInt(segments));
  }
  tensor::Tensor scores = tensor::NormalInit(pairs, 1, 1.0f, &rng, false);
  tensor::Tensor values = tensor::NormalInit(pairs, 64, 1.0f, &rng, false);
  for (auto _ : state) {
    tensor::Tensor alpha =
        tensor::SegmentSoftmax(scores, segment_ids, segments);
    benchmark::DoNotOptimize(tensor::SegmentSum(
        tensor::MulColumnBroadcast(values, alpha), segment_ids, segments));
  }
  state.SetItemsProcessed(state.iterations() * pairs * 64);
}
BENCHMARK(BM_SegmentSoftmaxSum)->Arg(1 << 12)->Arg(1 << 16);

void BM_HyGnnEncoderForward(benchmark::State& state) {
  const int32_t num_drugs = static_cast<int32_t>(state.range(0));
  data::DatasetConfig data_config;
  data_config.num_drugs = num_drugs;
  auto dataset = data::GenerateDataset(data_config).value();
  data::FeaturizeConfig feat_config;
  feat_config.espf_frequency_threshold = 3;
  auto featurizer =
      data::SubstructureFeaturizer::Build(dataset.drugs(), feat_config)
          .value();
  auto hypergraph = graph::BuildDrugHypergraph(
      featurizer.drug_substructures(), featurizer.num_substructures());
  auto context = model::HypergraphContext::FromHypergraph(hypergraph);
  core::Rng rng(4);
  model::EncoderConfig encoder_config;
  model::HypergraphEdgeEncoder encoder(featurizer.num_substructures(),
                                       encoder_config, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.Forward(context, false, nullptr));
  }
  state.SetItemsProcessed(state.iterations() * hypergraph.num_incidences());
}
BENCHMARK(BM_HyGnnEncoderForward)->Arg(100)->Arg(300);

void BM_EspfTrain(benchmark::State& state) {
  const int32_t num_drugs = static_cast<int32_t>(state.range(0));
  data::DatasetConfig data_config;
  data_config.num_drugs = num_drugs;
  auto dataset = data::GenerateDataset(data_config).value();
  std::vector<std::string> corpus;
  for (const auto& drug : dataset.drugs()) corpus.push_back(drug.smiles);
  chem::EspfConfig espf_config;
  espf_config.frequency_threshold = 3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(chem::Espf::Train(corpus, espf_config));
  }
}
BENCHMARK(BM_EspfTrain)->Arg(100)->Arg(300);

void BM_EspfSegment(benchmark::State& state) {
  data::DatasetConfig data_config;
  data_config.num_drugs = 200;
  auto dataset = data::GenerateDataset(data_config).value();
  std::vector<std::string> corpus;
  for (const auto& drug : dataset.drugs()) corpus.push_back(drug.smiles);
  chem::EspfConfig espf_config;
  espf_config.frequency_threshold = 3;
  auto espf = chem::Espf::Train(corpus, espf_config).value();
  size_t index = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(espf.Segment(corpus[index % corpus.size()]));
    ++index;
  }
}
BENCHMARK(BM_EspfSegment);

void BM_HypergraphBuild(benchmark::State& state) {
  const int32_t num_drugs = static_cast<int32_t>(state.range(0));
  data::DatasetConfig data_config;
  data_config.num_drugs = num_drugs;
  auto dataset = data::GenerateDataset(data_config).value();
  data::FeaturizeConfig feat_config;
  auto featurizer =
      data::SubstructureFeaturizer::Build(dataset.drugs(), feat_config)
          .value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::BuildDrugHypergraph(
        featurizer.drug_substructures(), featurizer.num_substructures()));
  }
}
BENCHMARK(BM_HypergraphBuild)->Arg(100)->Arg(300);

void BM_RandomWalks(benchmark::State& state) {
  core::Rng graph_rng(5);
  std::vector<std::pair<int32_t, int32_t>> edges;
  const int32_t n = 500;
  for (int32_t i = 0; i < n * 10; ++i) {
    edges.push_back({static_cast<int32_t>(graph_rng.UniformInt(n)),
                     static_cast<int32_t>(graph_rng.UniformInt(n))});
  }
  graph::Graph graph(n, edges);
  graph::RandomWalkConfig walk_config;
  walk_config.walk_length = 40;
  walk_config.num_walks_per_node = 2;
  core::Rng rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        graph::UniformRandomWalks(graph, walk_config, &rng));
  }
}
BENCHMARK(BM_RandomWalks);

void BM_BiasedRandomWalks(benchmark::State& state) {
  core::Rng graph_rng(7);
  std::vector<std::pair<int32_t, int32_t>> edges;
  const int32_t n = 500;
  for (int32_t i = 0; i < n * 10; ++i) {
    edges.push_back({static_cast<int32_t>(graph_rng.UniformInt(n)),
                     static_cast<int32_t>(graph_rng.UniformInt(n))});
  }
  graph::Graph graph(n, edges);
  graph::RandomWalkConfig walk_config;
  walk_config.walk_length = 40;
  walk_config.num_walks_per_node = 2;
  walk_config.p = 0.5;
  walk_config.q = 2.0;
  core::Rng rng(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        graph::BiasedRandomWalks(graph, walk_config, &rng));
  }
}
BENCHMARK(BM_BiasedRandomWalks);

}  // namespace
}  // namespace hygnn

BENCHMARK_MAIN();
