// Micro harness for the substrate operations that dominate HyGNN
// training: dense matmul, sparse-dense SpMM, the segment attention
// primitives, ESPF mining/segmentation, hypergraph construction, and
// random-walk generation.
//
// Default run: a thread-scaling sweep over the parallelized kernels
// (MatMul, SegmentSoftmax, SegmentSum, IndexSelectRows, Relu) at 1, 2,
// and 4 threads, verifying bit-identical outputs against the 1-thread
// reference and writing machine-readable JSON to BENCH_micro_ops.json
// (override with --json_out=PATH), followed by a fused-vs-unfused
// elementwise-chain comparison (dropout -> leaky-relu -> scale, forward
// and backward) that reports wall time, executed-op count, and buffer
// allocation count per iteration and verifies the two modes produce
// bit-identical loss and gradients. Pass --gbench to additionally run
// the google-benchmark suite below (plus any --benchmark_* flags).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "chem/espf.h"
#include "chem/generator.h"
#include "core/rng.h"
#include "core/stopwatch.h"
#include "core/thread_pool.h"
#include "data/featurize.h"
#include "data/generator.h"
#include "graph/builders.h"
#include "graph/random_walk.h"
#include "hygnn/encoder.h"
#include "tensor/init.h"
#include "tensor/ops.h"
#include "tensor/sparse.h"
#include "tensor/tape.h"
#include "tensor/tensor.h"

namespace hygnn {
namespace {

void BM_MatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  core::Rng rng(1);
  tensor::Tensor a = tensor::NormalInit(n, n, 1.0f, &rng, false);
  tensor::Tensor b = tensor::NormalInit(n, n, 1.0f, &rng, false);
  for (auto _ : state) {
    // data() forces the lazy tape to execute; without it the loop would
    // only measure op recording.
    benchmark::DoNotOptimize(tensor::MatMul(a, b).data()[0]);
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(64)->Arg(128)->Arg(256);

void BM_SpMM(benchmark::State& state) {
  const int64_t n = state.range(0);
  const int64_t nnz_per_row = 16;
  core::Rng rng(2);
  std::vector<int32_t> rows, cols;
  std::vector<float> vals;
  for (int64_t r = 0; r < n; ++r) {
    for (int64_t k = 0; k < nnz_per_row; ++k) {
      rows.push_back(static_cast<int32_t>(r));
      cols.push_back(static_cast<int32_t>(rng.UniformInt(n)));
      vals.push_back(1.0f);
    }
  }
  auto a = tensor::CsrMatrix::FromCoo(n, n, rows, cols, vals);
  tensor::Tensor x = tensor::NormalInit(n, 64, 1.0f, &rng, false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::SpMM(a, x));
  }
  state.SetItemsProcessed(state.iterations() * a->nnz() * 64);
}
BENCHMARK(BM_SpMM)->Arg(1024)->Arg(4096);

void BM_SegmentSoftmaxSum(benchmark::State& state) {
  const int64_t pairs = state.range(0);
  const int64_t segments = pairs / 16;
  core::Rng rng(3);
  std::vector<int32_t> segment_ids(pairs);
  for (auto& s : segment_ids) {
    s = static_cast<int32_t>(rng.UniformInt(segments));
  }
  tensor::Tensor scores = tensor::NormalInit(pairs, 1, 1.0f, &rng, false);
  tensor::Tensor values = tensor::NormalInit(pairs, 64, 1.0f, &rng, false);
  for (auto _ : state) {
    tensor::Tensor alpha =
        tensor::SegmentSoftmax(scores, segment_ids, segments);
    tensor::Tensor pooled = tensor::SegmentSum(
        tensor::MulColumnBroadcast(values, alpha), segment_ids, segments);
    benchmark::DoNotOptimize(pooled.data()[0]);  // materialize the tape
  }
  state.SetItemsProcessed(state.iterations() * pairs * 64);
}
BENCHMARK(BM_SegmentSoftmaxSum)->Arg(1 << 12)->Arg(1 << 16);

void BM_HyGnnEncoderForward(benchmark::State& state) {
  const int32_t num_drugs = static_cast<int32_t>(state.range(0));
  data::DatasetConfig data_config;
  data_config.num_drugs = num_drugs;
  auto dataset = data::GenerateDataset(data_config).value();
  data::FeaturizeConfig feat_config;
  feat_config.espf_frequency_threshold = 3;
  auto featurizer =
      data::SubstructureFeaturizer::Build(dataset.drugs(), feat_config)
          .value();
  auto hypergraph = graph::BuildDrugHypergraph(
      featurizer.drug_substructures(), featurizer.num_substructures());
  auto context = model::HypergraphContext::FromHypergraph(hypergraph);
  core::Rng rng(4);
  model::EncoderConfig encoder_config;
  model::HypergraphEdgeEncoder encoder(featurizer.num_substructures(),
                                       encoder_config, &rng);
  for (auto _ : state) {
    // data() forces the lazy tape to execute the recorded forward pass.
    benchmark::DoNotOptimize(encoder.Forward(context, false, nullptr).data()[0]);
  }
  state.SetItemsProcessed(state.iterations() * hypergraph.num_incidences());
}
BENCHMARK(BM_HyGnnEncoderForward)->Arg(100)->Arg(300);

void BM_EspfTrain(benchmark::State& state) {
  const int32_t num_drugs = static_cast<int32_t>(state.range(0));
  data::DatasetConfig data_config;
  data_config.num_drugs = num_drugs;
  auto dataset = data::GenerateDataset(data_config).value();
  std::vector<std::string> corpus;
  for (const auto& drug : dataset.drugs()) corpus.push_back(drug.smiles);
  chem::EspfConfig espf_config;
  espf_config.frequency_threshold = 3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(chem::Espf::Train(corpus, espf_config));
  }
}
BENCHMARK(BM_EspfTrain)->Arg(100)->Arg(300);

void BM_EspfSegment(benchmark::State& state) {
  data::DatasetConfig data_config;
  data_config.num_drugs = 200;
  auto dataset = data::GenerateDataset(data_config).value();
  std::vector<std::string> corpus;
  for (const auto& drug : dataset.drugs()) corpus.push_back(drug.smiles);
  chem::EspfConfig espf_config;
  espf_config.frequency_threshold = 3;
  auto espf = chem::Espf::Train(corpus, espf_config).value();
  size_t index = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(espf.Segment(corpus[index % corpus.size()]));
    ++index;
  }
}
BENCHMARK(BM_EspfSegment);

void BM_HypergraphBuild(benchmark::State& state) {
  const int32_t num_drugs = static_cast<int32_t>(state.range(0));
  data::DatasetConfig data_config;
  data_config.num_drugs = num_drugs;
  auto dataset = data::GenerateDataset(data_config).value();
  data::FeaturizeConfig feat_config;
  auto featurizer =
      data::SubstructureFeaturizer::Build(dataset.drugs(), feat_config)
          .value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::BuildDrugHypergraph(
        featurizer.drug_substructures(), featurizer.num_substructures()));
  }
}
BENCHMARK(BM_HypergraphBuild)->Arg(100)->Arg(300);

void BM_RandomWalks(benchmark::State& state) {
  core::Rng graph_rng(5);
  std::vector<std::pair<int32_t, int32_t>> edges;
  const int32_t n = 500;
  for (int32_t i = 0; i < n * 10; ++i) {
    edges.push_back({static_cast<int32_t>(graph_rng.UniformInt(n)),
                     static_cast<int32_t>(graph_rng.UniformInt(n))});
  }
  graph::Graph graph(n, edges);
  graph::RandomWalkConfig walk_config;
  walk_config.walk_length = 40;
  walk_config.num_walks_per_node = 2;
  core::Rng rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        graph::UniformRandomWalks(graph, walk_config, &rng));
  }
}
BENCHMARK(BM_RandomWalks);

void BM_BiasedRandomWalks(benchmark::State& state) {
  core::Rng graph_rng(7);
  std::vector<std::pair<int32_t, int32_t>> edges;
  const int32_t n = 500;
  for (int32_t i = 0; i < n * 10; ++i) {
    edges.push_back({static_cast<int32_t>(graph_rng.UniformInt(n)),
                     static_cast<int32_t>(graph_rng.UniformInt(n))});
  }
  graph::Graph graph(n, edges);
  graph::RandomWalkConfig walk_config;
  walk_config.walk_length = 40;
  walk_config.num_walks_per_node = 2;
  walk_config.p = 0.5;
  walk_config.q = 2.0;
  core::Rng rng(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        graph::BiasedRandomWalks(graph, walk_config, &rng));
  }
}
BENCHMARK(BM_BiasedRandomWalks);

// ---------------------------------------------------------------------------
// Thread-scaling JSON harness (the repo's bench trajectory record)
// ---------------------------------------------------------------------------

/// One timed configuration of one op.
struct ScalingResult {
  std::string op;
  int64_t rows = 0;
  int64_t cols = 0;
  int32_t threads = 0;
  double ns_per_iter = 0.0;
  double speedup_vs_1t = 1.0;
  bool bit_identical = true;
};

/// Times `run` (which returns the op's output buffer for the identity
/// check) until ~200 ms of samples or 64 iterations, whichever first.
template <typename Fn>
double TimeNsPerIter(Fn run) {
  run();  // warmup + first-touch
  core::Stopwatch watch;
  int64_t iters = 0;
  do {
    run();
    ++iters;
  } while (watch.ElapsedSeconds() < 0.2 && iters < 64);
  return watch.ElapsedSeconds() * 1e9 / static_cast<double>(iters);
}

/// Runs one op at 1/2/4 threads, recording time and comparing outputs
/// bit-for-bit against the 1-thread run.
template <typename Fn>
void SweepThreads(const std::string& op, int64_t rows, int64_t cols, Fn run,
                  std::vector<ScalingResult>* results) {
  std::vector<float> reference;
  double ns_1t = 0.0;
  for (int32_t threads : {1, 2, 4}) {
    core::SetNumThreads(threads);
    std::vector<float> output;
    const double ns = TimeNsPerIter([&] { output = run(); });
    ScalingResult r;
    r.op = op;
    r.rows = rows;
    r.cols = cols;
    r.threads = threads;
    r.ns_per_iter = ns;
    if (threads == 1) {
      reference = output;
      ns_1t = ns;
    }
    r.speedup_vs_1t = threads == 1 ? 1.0 : ns_1t / ns;
    r.bit_identical =
        output.size() == reference.size() &&
        std::memcmp(output.data(), reference.data(),
                    output.size() * sizeof(float)) == 0;
    results->push_back(r);
    std::printf("%-16s %6lldx%-5lld threads=%d  %12.0f ns/iter  "
                "x%.2f  %s\n",
                op.c_str(), static_cast<long long>(rows),
                static_cast<long long>(cols), threads, ns, r.speedup_vs_1t,
                r.bit_identical ? "bit-identical" : "MISMATCH");
  }
  core::SetNumThreads(1);
}

std::vector<float> TensorData(const tensor::Tensor& t) {
  return std::vector<float>(t.data(), t.data() + t.size());
}

// ---------------------------------------------------------------------------
// Fused-vs-unfused elementwise chain (tape fusion pass, DESIGN.md 12)
// ---------------------------------------------------------------------------

/// One timed configuration of the dropout -> leaky-relu -> scale chain,
/// forward and backward, with fusion on or off.
struct FusionChainResult {
  bool fused = false;
  double ns_per_iter = 0.0;
  double ops_per_iter = 0.0;     // tape executor kernel invocations
  double allocs_per_iter = 0.0;  // output buffers allocated
  int64_t fused_groups = 0;
  bool bit_identical = true;  // vs the unfused run (loss + input grad)
  std::vector<float> loss_and_grad;
};

FusionChainResult RunFusionChain(bool fused, const std::vector<float>& base,
                                 int64_t n, int64_t d) {
  tensor::SetFusionEnabled(fused);
  FusionChainResult result;
  result.fused = fused;
  const auto step = [&] {
    // Fresh leaf every iteration so gradients never accumulate across
    // runs; re-seeding draws identical dropout masks in both modes.
    tensor::Tensor x =
        tensor::Tensor::FromVector(base, n, d, /*requires_grad=*/true);
    core::Rng rng(17);
    tensor::Tensor loss = tensor::ReduceMean(tensor::Scale(
        tensor::LeakyRelu(tensor::Dropout(x, 0.3f, true, &rng), 0.1f),
        0.5f));
    loss.Backward();
    std::vector<float> out;
    out.reserve(1 + static_cast<size_t>(x.size()));
    out.push_back(loss.item());
    out.insert(out.end(), x.grad(), x.grad() + x.size());
    return out;
  };
  result.loss_and_grad = step();  // warmup; output doubles as reference
  tensor::ResetExecStats();
  core::Stopwatch watch;
  int64_t iters = 0;
  do {
    step();
    ++iters;
  } while (watch.ElapsedSeconds() < 0.2 && iters < 64);
  const double seconds = watch.ElapsedSeconds();
  const auto stats = tensor::ExecStats();
  result.ns_per_iter = seconds * 1e9 / static_cast<double>(iters);
  result.ops_per_iter =
      static_cast<double>(stats.ops_executed) / static_cast<double>(iters);
  result.allocs_per_iter = static_cast<double>(stats.buffers_allocated) /
                           static_cast<double>(iters);
  result.fused_groups = stats.fused_groups;
  return result;
}

/// Runs the chain with fusion off then on and cross-checks bit-identity.
std::vector<FusionChainResult> RunFusionComparison() {
  const int64_t n = 4096, d = 64;
  core::Rng rng(9);
  std::vector<float> base(static_cast<size_t>(n * d));
  for (auto& v : base) v = rng.UniformFloat() * 2.0f - 1.0f;
  std::vector<FusionChainResult> results;
  results.push_back(RunFusionChain(false, base, n, d));
  results.push_back(RunFusionChain(true, base, n, d));
  tensor::SetFusionEnabled(true);  // restore the default
  const auto& reference = results[0].loss_and_grad;
  for (auto& r : results) {
    r.bit_identical =
        r.loss_and_grad.size() == reference.size() &&
        std::memcmp(r.loss_and_grad.data(), reference.data(),
                    reference.size() * sizeof(float)) == 0;
    std::printf("FusedChain %6lldx%-5lld fuse=%d  %12.0f ns/iter  "
                "%5.1f ops/iter  %5.1f allocs/iter  %s\n",
                static_cast<long long>(n), static_cast<long long>(d),
                r.fused ? 1 : 0, r.ns_per_iter, r.ops_per_iter,
                r.allocs_per_iter,
                r.bit_identical ? "bit-identical" : "MISMATCH");
  }
  return results;
}

int RunScalingHarness(const std::string& json_path) {
  std::vector<ScalingResult> results;

  {
    const int64_t n = 192;
    core::Rng rng(1);
    tensor::Tensor a = tensor::NormalInit(n, n, 1.0f, &rng, false);
    tensor::Tensor b = tensor::NormalInit(n, n, 1.0f, &rng, false);
    SweepThreads("MatMul", n, n,
                 [&] { return TensorData(tensor::MatMul(a, b)); }, &results);
  }
  {
    const int64_t pairs = 1 << 16;
    const int64_t segments = pairs / 16;
    core::Rng rng(3);
    std::vector<int32_t> segment_ids(pairs);
    for (auto& s : segment_ids) {
      s = static_cast<int32_t>(rng.UniformInt(segments));
    }
    tensor::Tensor scores = tensor::NormalInit(pairs, 1, 1.0f, &rng, false);
    SweepThreads("SegmentSoftmax", pairs, 1,
                 [&] {
                   return TensorData(
                       tensor::SegmentSoftmax(scores, segment_ids, segments));
                 },
                 &results);
    tensor::Tensor values = tensor::NormalInit(pairs, 64, 1.0f, &rng, false);
    SweepThreads("SegmentSum", pairs, 64,
                 [&] {
                   return TensorData(
                       tensor::SegmentSum(values, segment_ids, segments));
                 },
                 &results);
  }
  {
    const int64_t rows = 1 << 14, d = 64, picks = 1 << 13;
    core::Rng rng(5);
    tensor::Tensor x = tensor::NormalInit(rows, d, 1.0f, &rng, false);
    std::vector<int32_t> indices(picks);
    for (auto& idx : indices) {
      idx = static_cast<int32_t>(rng.UniformInt(rows));
    }
    SweepThreads("IndexSelectRows", picks, d,
                 [&] { return TensorData(tensor::IndexSelectRows(x, indices)); },
                 &results);
  }
  {
    const int64_t n = 1 << 20;
    core::Rng rng(7);
    tensor::Tensor x = tensor::NormalInit(n, 1, 1.0f, &rng, false);
    SweepThreads("Relu", n, 1, [&] { return TensorData(tensor::Relu(x)); },
                 &results);
  }

  const std::vector<FusionChainResult> fusion = RunFusionComparison();

  std::FILE* file = std::fopen(json_path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(file, "{\n  \"bench\": \"micro_ops\",\n  \"results\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::fprintf(file,
                 "    {\"op\": \"%s\", \"rows\": %lld, \"cols\": %lld, "
                 "\"threads\": %d, \"ns_per_iter\": %.1f, "
                 "\"speedup_vs_1t\": %.3f, \"bit_identical\": %s}%s\n",
                 r.op.c_str(), static_cast<long long>(r.rows),
                 static_cast<long long>(r.cols), r.threads, r.ns_per_iter,
                 r.speedup_vs_1t, r.bit_identical ? "true" : "false",
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(file, "  ],\n  \"fused_chain\": [\n");
  for (size_t i = 0; i < fusion.size(); ++i) {
    const auto& r = fusion[i];
    std::fprintf(file,
                 "    {\"chain\": \"Dropout|LeakyRelu|Scale\", "
                 "\"fused\": %s, \"ns_per_iter\": %.1f, "
                 "\"ops_per_iter\": %.1f, \"allocs_per_iter\": %.1f, "
                 "\"bit_identical\": %s}%s\n",
                 r.fused ? "true" : "false", r.ns_per_iter, r.ops_per_iter,
                 r.allocs_per_iter, r.bit_identical ? "true" : "false",
                 i + 1 < fusion.size() ? "," : "");
  }
  std::fprintf(file, "  ]\n}\n");
  std::fclose(file);
  std::printf("wrote %s\n", json_path.c_str());

  for (const auto& r : results) {
    if (!r.bit_identical) {
      std::fprintf(stderr, "FAIL: %s at %d threads is not bit-identical\n",
                   r.op.c_str(), r.threads);
      return 1;
    }
  }
  for (const auto& r : fusion) {
    if (!r.bit_identical) {
      std::fprintf(stderr,
                   "FAIL: fused chain (fuse=%d) is not bit-identical to the "
                   "unfused reference\n",
                   r.fused ? 1 : 0);
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace hygnn

int main(int argc, char** argv) {
  std::string json_path = "BENCH_micro_ops.json";
  bool run_gbench = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json_out=", 0) == 0) {
      json_path = arg.substr(std::string("--json_out=").size());
    } else if (arg == "--gbench") {
      run_gbench = true;
    } else if (arg.rfind("--benchmark_", 0) == 0) {
      run_gbench = true;  // any google-benchmark flag implies the suite
    }
  }
  const int status = hygnn::RunScalingHarness(json_path);
  if (status != 0) return status;
  if (run_gbench) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  return 0;
}
