// Reproduces Tables II & III of the HyGNN paper: the novel-DDI case
// study. Several drugs are designated "new": every pair touching them is
// removed from training. HyGNN (k-mer & MLP) is trained on the rest and
// then asked to score pairs of the new drugs. Predictions are validated
// against the latent ground-truth rule, which plays the role of the
// paper's external gold-standard databases (DrugBank / MedScape).
//
// Table II: drug-pair ids, predicted score, external validation label.
// Table III: the id -> name registry for the drugs involved.

#include <algorithm>
#include <cstdio>
#include <set>
#include <vector>

#include "bench/experiment.h"
#include "graph/builders.h"

namespace hygnn::bench {
namespace {

int Main(int argc, const char* const* argv) {
  core::FlagParser flags;
  if (!flags.Parse(argc, argv).ok()) return 1;
  ExperimentConfig config = ExperimentConfig::FromFlags(flags);
  const int32_t num_new_drugs =
      static_cast<int32_t>(flags.GetInt("new_drugs", 5));
  ExperimentContext context(config);
  const auto& dataset = context.dataset();

  // Designate the "new" drugs deterministically.
  core::Rng pick_rng(config.seed ^ 0x777);
  std::vector<int32_t> new_drugs;
  {
    auto picks = pick_rng.SampleWithoutReplacement(
        dataset.num_drugs(), static_cast<size_t>(num_new_drugs));
    for (size_t p : picks) new_drugs.push_back(static_cast<int32_t>(p));
    std::sort(new_drugs.begin(), new_drugs.end());
  }

  // Cold-start split: pairs touching new drugs go to test only.
  core::Rng pair_rng(config.seed ^ 0x888);
  auto pairs = data::BuildBalancedPairs(dataset, &pair_rng);
  auto cold = data::ColdStartSplit(pairs, new_drugs);

  // Train HyGNN k-mer & MLP on the remaining pairs.
  const auto& featurizer = context.kmer();
  auto hypergraph = graph::BuildDrugHypergraph(
      featurizer.drug_substructures(), featurizer.num_substructures());
  auto hyper_context = model::HypergraphContext::FromHypergraph(hypergraph);
  core::Rng model_rng(config.seed ^ 0x999);
  model::HyGnnConfig model_config;
  model_config.encoder.hidden_dim = config.hidden_dim;
  model_config.encoder.output_dim = config.hidden_dim;
  model_config.encoder.dropout = 0.1f;
  model::HyGnnModel hygnn(featurizer.num_substructures(), model_config,
                          &model_rng);
  model::TrainConfig train_config;
  train_config.epochs = config.epochs;
  train_config.weight_decay = 1e-4f;
  train_config.seed = config.seed ^ 0xaaa;
  model::HyGnnTrainer trainer(&hygnn, train_config);
  trainer.Fit(hyper_context, cold.train);

  // Overall cold-start quality.
  auto cold_metrics = trainer.Evaluate(hyper_context, cold.test);
  std::printf("=== Case study: %d new drugs held out of training ===\n",
              num_new_drugs);
  std::printf("cold-start test metrics: F1 %.3f  ROC-AUC %.3f  PR-AUC "
              "%.3f  (%zu pairs)\n\n",
              cold_metrics.f1, cold_metrics.roc_auc, cold_metrics.pr_auc,
              cold.test.size());

  // Table II: per-pair predictions for a sample of held-out pairs —
  // strongest predicted positives and negatives, validated externally.
  std::vector<data::LabeledPair> sample;
  std::set<int32_t> involved(new_drugs.begin(), new_drugs.end());
  {
    auto scores = hygnn.PredictProbabilities(hyper_context, cold.test);
    std::vector<size_t> order(cold.test.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&scores](size_t a, size_t b) {
      return scores[a] > scores[b];
    });
    std::printf("--- Table II: novel DDI predictions ---\n");
    std::printf("%-10s %-10s %16s %18s\n", "Drug1", "Drug2",
                "Predicted score", "Oracle label");
    auto print_pair = [&](size_t index) {
      const auto& pair = cold.test[index];
      const bool oracle = dataset.OracleInteracts(pair.a, pair.b);
      std::printf("%-10s %-10s %16.5f %18s\n",
                  dataset.drugs()[pair.a].drugbank_id.c_str(),
                  dataset.drugs()[pair.b].drugbank_id.c_str(),
                  scores[index], oracle ? "1 (interacts)" : "0");
      involved.insert(pair.a);
      involved.insert(pair.b);
    };
    const size_t top = std::min<size_t>(5, order.size());
    for (size_t i = 0; i < top; ++i) print_pair(order[i]);
    const size_t bottom = std::min<size_t>(5, order.size() - top);
    for (size_t i = 0; i < bottom; ++i) {
      print_pair(order[order.size() - 1 - i]);
    }
  }

  // Table III: names of every drug that appears above.
  std::printf("\n--- Table III: drug registry for Table II ---\n");
  std::printf("%-10s %-22s %s\n", "Drug", "Name", "Held out?");
  for (int32_t d : involved) {
    const bool held =
        std::find(new_drugs.begin(), new_drugs.end(), d) != new_drugs.end();
    std::printf("%-10s %-22s %s\n",
                dataset.drugs()[d].drugbank_id.c_str(),
                dataset.drugs()[d].name.c_str(), held ? "yes" : "no");
  }
  return 0;
}

}  // namespace
}  // namespace hygnn::bench

int main(int argc, char** argv) { return hygnn::bench::Main(argc, argv); }
