// Reproduces Figure 2 of the HyGNN paper: F1 vs training fraction
// (30% .. 70%) for the best model of each family — Node2Vec (RWE),
// GraphSAGE (GNN on DDI), GraphSAGE (GNN on SSG), LR (ML on FR) and
// HyGNN with k-mer & MLP.
//
// Prints one row per training fraction with one column per model, the
// series the paper plots.

#include <cstdio>
#include <functional>
#include <vector>

#include "bench/experiment.h"
#include "core/stopwatch.h"

namespace hygnn::bench {
namespace {

using baselines::BaselineConfig;
using baselines::GnnKind;
using baselines::MlKind;
using baselines::RweKind;

struct Series {
  std::string name;
  std::function<model::EvalResult(const Round&)> run;
};

int Main(int argc, const char* const* argv) {
  core::FlagParser flags;
  if (!flags.Parse(argc, argv).ok()) return 1;
  ExperimentConfig config = ExperimentConfig::FromFlags(flags);
  ExperimentContext context(config);
  const BaselineConfig baseline_config = config.ToBaselineConfig();

  const std::vector<Series> series = {
      {"Node2Vec",
       [&baseline_config](const Round& round) {
         return RunRweOnDdiGraph(round.MakeBaselineInputs(),
                                 RweKind::kNode2Vec, baseline_config);
       }},
      {"SAGE-DDI",
       [&baseline_config](const Round& round) {
         return RunGnnOnDdiGraph(round.MakeBaselineInputs(), GnnKind::kSage,
                                 baseline_config);
       }},
      {"SAGE-SSG",
       [&baseline_config](const Round& round) {
         return RunGnnOnSsg(round.MakeBaselineInputs(), GnnKind::kSage,
                            baseline_config);
       }},
      {"LR-FR",
       [&baseline_config](const Round& round) {
         return RunMlOnFunctionalRepresentation(round.MakeBaselineInputs(),
                                                MlKind::kLr,
                                                baseline_config);
       }},
      {"HyGNN",
       [&config](const Round& round) {
         return RunHyGnnVariant(round, HyGnnFeatures::kKmer,
                                model::DecoderKind::kMlp, config);
       }},
  };

  const std::vector<double> fractions{0.3, 0.4, 0.5, 0.6, 0.7};

  std::printf("=== Figure 2: F1 vs training size, %d drugs, %d runs ===\n",
              config.num_drugs, config.runs);
  std::printf("%-10s", "train%");
  for (const auto& s : series) std::printf(" %10s", s.name.c_str());
  std::printf("\n%s\n", std::string(10 + 11 * series.size(), '-').c_str());

  core::Stopwatch total;
  for (double fraction : fractions) {
    std::printf("%-10.0f", fraction * 100.0);
    for (const auto& s : series) {
      std::vector<model::EvalResult> results;
      for (int32_t run = 0; run < config.runs; ++run) {
        results.push_back(s.run(context.MakeRound(run, fraction)));
      }
      std::printf(" %10.3f", Aggregate(results).f1.mean);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("total time: %.1fs\n", total.ElapsedSeconds());
  return 0;
}

}  // namespace
}  // namespace hygnn::bench

int main(int argc, char** argv) { return hygnn::bench::Main(argc, argv); }
